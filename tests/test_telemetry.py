"""Tests for the live telemetry plane (PR 10).

Covers the worker-side delta encoder and the driver-side exactly-once
fold (duplicates dropped, gaps poison, resolve reconciles against the
committed payload), stitched span identity across the task-payload
codec, HELP text in the Prometheus exposition, the flight recorder, the
folded-stack exporter, the HTTP endpoints — and the two headline pins:
a running campaign can be scraped mid-flight, and at completion the
live registry equals the post-hoc merged registry byte for byte, with
and without injected dispatch faults.
"""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.config import CONFIG_A
from repro.harness import (
    DispatchPool,
    ExperimentRunner,
    FaultPolicy,
    LocalPool,
    ResultCache,
)
from repro.harness.faults import FAULTS_ENV
from repro.obs import (
    EventLog,
    LiveRegistry,
    MetricsDeltaEncoder,
    MetricsRegistry,
    ObsContext,
    Span,
    TELEMETRY_DELTAS,
    TELEMETRY_DROPPED,
    TelemetryPlane,
    TelemetryServer,
    Tracer,
    folded_stacks,
    format_event,
    help_text,
    match_event,
    parse_filters,
    read_events,
    read_trace_jsonl,
    register_help,
    render_prometheus,
    trace_report_json,
    write_trace_jsonl,
)

from .conftest import TEST_SCALE

SUITE_NAMES = ("gzip", "lucas")


def _runner(sampling, cache_dir, **policy_kwargs):
    policy_kwargs.setdefault("backoff_base", 0.0)
    return ExperimentRunner(
        sampling=sampling,
        cache=ResultCache(directory=cache_dir),
        workload_scale=TEST_SCALE,
        policy=FaultPolicy(**policy_kwargs),
    )


def _payload(outcome):
    return [json.dumps(run.to_dict(), sort_keys=True) for run in outcome]


def _attach_plane(runner):
    plane = TelemetryPlane(runner.obs, events=EventLog())
    runner.telemetry = plane
    return plane


def _get(url):
    with urllib.request.urlopen(url, timeout=10) as response:
        return response.read().decode()


# ----------------------------------------------------------------------
# delta encoder
# ----------------------------------------------------------------------
class TestMetricsDeltaEncoder:
    def test_quiescent_registry_yields_none(self):
        encoder = MetricsDeltaEncoder(MetricsRegistry())
        assert encoder.next_delta() is None
        assert encoder.seq == 0

    def test_counter_deltas_are_arithmetic_diffs(self):
        registry = MetricsRegistry()
        encoder = MetricsDeltaEncoder(registry)
        registry.counter("repro_x_total").inc(3)
        first = encoder.next_delta()
        assert first["seq"] == 1
        (item,) = first["metrics"]
        assert item == {"name": "repro_x_total", "kind": "counter",
                        "labels": {}, "value": 3.0}
        registry.counter("repro_x_total").inc(2)
        second = encoder.next_delta()
        assert second["seq"] == 2
        assert second["metrics"][0]["value"] == 2.0
        assert encoder.next_delta() is None  # nothing changed since

    def test_histogram_deltas_diff_buckets_sum_count(self):
        registry = MetricsRegistry()
        encoder = MetricsDeltaEncoder(registry)
        hist = registry.histogram("repro_s", buckets=(0.1, 1.0))
        hist.observe(0.05)
        encoder.next_delta()
        hist.observe(0.5)
        delta = encoder.next_delta()
        (item,) = delta["metrics"]
        assert item["kind"] == "histogram"
        assert item["count"] == 1
        assert item["sum"] == pytest.approx(0.5)
        assert sum(item["counts"]) == 1

    def test_gauge_ships_full_state(self):
        registry = MetricsRegistry()
        encoder = MetricsDeltaEncoder(registry)
        registry.gauge("repro_g", agg="max").set(4.0)
        (item,) = encoder.next_delta()["metrics"]
        assert item["kind"] == "gauge"
        assert item["agg"] == "max"
        assert item["value"] == 4.0


# ----------------------------------------------------------------------
# live registry: exactly-once folding
# ----------------------------------------------------------------------
class TestLiveRegistry:
    def _delta(self, seq, value):
        return {"seq": seq, "metrics": [
            {"name": "repro_x_total", "kind": "counter", "labels": {},
             "value": value},
        ]}

    def test_fold_applies_in_sequence(self):
        live = LiveRegistry(MetricsRegistry())
        assert live.fold("s", self._delta(1, 2.0))
        assert live.fold("s", self._delta(2, 3.0))
        assert live.snapshot().value("repro_x_total") == 5.0
        assert live.deltas_folded == 2

    def test_duplicate_and_reordered_deltas_dropped(self):
        live = LiveRegistry(MetricsRegistry())
        assert live.fold("s", self._delta(1, 2.0))
        assert not live.fold("s", self._delta(1, 2.0))  # duplicate
        assert not live.fold("s", {"seq": 0, "metrics": []})  # stale
        assert live.snapshot().value("repro_x_total") == 2.0
        assert live.deltas_dropped == 2
        assert live.base.value(TELEMETRY_DROPPED) == 2.0

    def test_gap_poisons_the_stream(self):
        live = LiveRegistry(MetricsRegistry())
        live.fold("s", self._delta(1, 2.0))
        assert not live.fold("s", self._delta(3, 9.0))  # gap: 2 missing
        # Partial sums would be wrong: pending state is cleared and
        # later deltas ignored until resolve reconciles.
        assert live.snapshot().value("repro_x_total") == 0.0
        assert not live.fold("s", self._delta(4, 1.0))

    def test_malformed_delta_dropped(self):
        live = LiveRegistry(MetricsRegistry())
        assert not live.fold("s", {"metrics": []})
        assert not live.fold("s", {"seq": "nope"})
        assert live.deltas_dropped == 2

    def test_resolve_replaces_pending_with_committed_payload(self):
        base = MetricsRegistry()
        live = LiveRegistry(base)
        live.fold("s", self._delta(1, 2.0))
        # The committed payload is a superset of the streamed deltas.
        final = MetricsRegistry()
        final.counter("repro_x_total").inc(5.0)
        live.resolve("s", merge=lambda: base.merge(final))
        snap = live.snapshot()
        assert snap.value("repro_x_total") == 5.0
        assert live.pending_streams() == []

    def test_straggler_after_resolve_cannot_resurrect_stream(self):
        live = LiveRegistry(MetricsRegistry())
        live.fold("s", self._delta(1, 2.0))
        live.resolve("s")
        assert not live.fold("s", self._delta(2, 7.0))
        assert live.snapshot().value("repro_x_total") == 0.0

    def test_discard_drops_partial_deltas(self):
        live = LiveRegistry(MetricsRegistry())
        live.fold("s", self._delta(1, 2.0))
        live.discard("s")
        assert live.snapshot().value("repro_x_total") == 0.0
        assert not live.fold("s", self._delta(2, 1.0))

    def test_completion_equality_after_stream_and_resolve(self):
        # End-to-end encoder -> fold -> resolve: the live snapshot at
        # completion must equal the post-hoc merged registry exactly.
        worker = MetricsRegistry()
        encoder = MetricsDeltaEncoder(worker)
        base = MetricsRegistry()
        live = LiveRegistry(base)
        for step in range(3):
            worker.counter("repro_x_total").inc(step + 1)
            worker.histogram("repro_s", buckets=(0.1, 1.0)).observe(0.2)
            live.fold("s", encoder.next_delta())
        final = MetricsRegistry.from_dict(worker.to_dict())
        live.resolve("s", merge=lambda: base.merge(final))
        # Folded-delta bookkeeping lands on the base registry itself, so
        # the committed state and the live view agree to the byte.
        post_hoc = MetricsRegistry.from_dict(base.to_dict())
        assert (render_prometheus(live.snapshot())
                == render_prometheus(post_hoc))


# ----------------------------------------------------------------------
# span identity and trace stitching
# ----------------------------------------------------------------------
class TestSpanIdentity:
    def test_ids_are_deterministic_counters(self):
        tracer = Tracer()
        with tracer.span("suite") as suite:
            with tracer.span("run") as run:
                pass
        assert suite.span_id == "main:1"
        assert run.span_id == "main:2"
        assert run.parent_id == "main:1"
        assert suite.trace_id == run.trace_id == "T-main"
        assert suite.parent_id is None

    def test_from_dict_roundtrip_preserves_ids(self):
        tracer = Tracer()
        with tracer.span("suite"):
            with tracer.span("run"):
                pass
        (root,) = tracer.roots
        clone = Span.from_dict(root.to_dict())
        assert clone.span_id == root.span_id
        assert clone.trace_id == root.trace_id
        assert clone.children[0].parent_id == root.span_id

    def test_legacy_dump_without_ids_still_loads(self):
        span = Span("old")
        payload = span.to_dict()
        assert "span_id" not in payload  # legacy shape unchanged
        clone = Span.from_dict(payload)
        assert clone.span_id is None

    def test_adopted_context_stitches_worker_under_suite(self):
        driver = Tracer()
        with driver.span("suite") as suite:
            context = driver.export_context("gzip:config_a:a0")
        worker = Tracer()
        worker.adopt_context(**context)
        with worker.span("run", benchmark="gzip") as run:
            pass
        assert run.trace_id == suite.trace_id
        assert run.parent_id == suite.span_id
        assert run.span_id.startswith("gzip:config_a:a0:")

    def test_trace_jsonl_roundtrip_preserves_ids(self, tmp_path):
        obs = ObsContext()
        with obs.tracer.span("suite"):
            with obs.tracer.span("run"):
                pass
        path = tmp_path / "trace.jsonl"
        write_trace_jsonl(path, obs.tracer, obs.metrics, {})
        dump = read_trace_jsonl(path)
        (root,) = dump.roots
        assert root.span_id == "main:1"
        assert root.children[0].parent_id == "main:1"
        assert root.trace_id == "T-main"

    def test_dispatched_worker_spans_carry_identity(
            self, tmp_path, test_sampling, monkeypatch):
        monkeypatch.delenv(FAULTS_ENV, raising=False)
        runner = _runner(test_sampling, tmp_path / "cache")
        pool = DispatchPool(workers=2)
        runner.run_suite(CONFIG_A, names=["gzip"], pool=pool)
        (suite,) = runner.obs.tracer.roots
        (run,) = [s for s in suite.children if s.name == "run"]
        # The worker adopted the exported context: its root pre-points
        # at the owning suite span and shares the driver's trace id.
        assert run.parent_id == suite.span_id
        assert run.trace_id == suite.trace_id
        assert run.span_id.startswith("gzip:config_a:a0:")
        assert run.attributes.get("worker") == "w0"
        assert run.attributes.get("host")
        assert run.attributes.get("pid")


# ----------------------------------------------------------------------
# HELP text (satellite 1)
# ----------------------------------------------------------------------
class TestHelpText:
    def test_help_precedes_type_for_every_family(self):
        registry = MetricsRegistry()
        registry.counter("repro_runs_completed_total").inc()
        registry.histogram("repro_stage_seconds", benchmark="gzip") \
            .observe(0.1)
        registry.gauge("repro_custom_thing").set(1.0)
        lines = render_prometheus(registry).splitlines()
        for index, line in enumerate(lines):
            if line.startswith("# TYPE"):
                name = line.split()[2]
                assert lines[index - 1].startswith(f"# HELP {name} "), \
                    f"no HELP before TYPE for {name}"

    def test_registered_help_is_used_and_fallback_exists(self):
        register_help("repro_test_metric", "A   test\nmetric.")
        assert help_text("repro_test_metric") == "A test metric."
        assert "no help registered" in help_text("repro_unheard_of")

    def test_known_constants_have_real_help(self):
        for name in ("repro_runs_completed_total", "repro_cache_hits_total",
                     "repro_dispatch_leases_total",
                     TELEMETRY_DELTAS, TELEMETRY_DROPPED):
            assert "no help registered" not in help_text(name)


# ----------------------------------------------------------------------
# flight recorder
# ----------------------------------------------------------------------
class TestEventLog:
    def test_ring_is_bounded_and_ordered(self):
        log = EventLog(capacity=3)
        for index in range(5):
            log.emit("retry", attempt=index)
        events = log.tail()
        assert [e["attempt"] for e in events] == [2, 3, 4]
        assert [e["seq"] for e in events] == [3, 4, 5]
        assert len(log) == 3

    def test_tail_filters_and_limits(self):
        log = EventLog()
        log.emit("cache_hit", benchmark="gzip")
        log.emit("cache_miss", benchmark="gzip")
        log.emit("cache_hit", benchmark="lucas")
        hits = log.tail(filters={"kind": "cache_hit"})
        assert [e["benchmark"] for e in hits] == ["gzip", "lucas"]
        assert len(log.tail(limit=1)) == 1

    def test_sink_appends_jsonl_and_reads_back(self, tmp_path):
        path = tmp_path / "events.jsonl"
        log = EventLog(sink=path)
        log.emit("suite_begin", runs=2)
        log.emit("suite_end")
        log.close()
        records = read_events(path)
        assert [r["kind"] for r in records] == ["suite_begin", "suite_end"]
        assert records[0]["runs"] == 2

    def test_parse_filters_and_match(self):
        filters = parse_filters(["retry", "benchmark=gzip"])
        assert filters == {"kind": "retry", "benchmark": "gzip"}
        assert match_event({"kind": "retry", "benchmark": "gzip"}, filters)
        assert not match_event({"kind": "retry"}, filters)

    def test_format_event_is_one_line(self):
        line = format_event(
            {"seq": 7, "ts": 0.0, "kind": "retry", "benchmark": "gzip"}
        )
        assert line.startswith("#    7 ")
        assert "retry" in line and "benchmark=gzip" in line
        assert "\n" not in line


# ----------------------------------------------------------------------
# flamegraph export
# ----------------------------------------------------------------------
class TestFlame:
    def _span(self, name, duration, children=(), **attrs):
        span = Span(name, attributes=dict(attrs))
        span.duration = duration
        span.children = list(children)
        return span

    def test_folded_stacks_compute_self_time(self):
        child = self._span("stage", 0.3)
        root = self._span("run", 1.0, children=[child], benchmark="gzip")
        lines = folded_stacks([root])
        # Root self time = 1.0s - 0.3s child = 0.7s; in microseconds.
        assert "run[gzip] 700000" in lines
        assert "run[gzip];stage 300000" in lines

    def test_identical_stacks_sum(self):
        spans = [self._span("run", 1.0), self._span("run", 0.5)]
        assert folded_stacks(spans) == ["run 1500000"]

    def test_negative_self_time_clamps_to_zero(self):
        # A re-parented worker child can overlap its parent; the
        # parent's self time clamps to zero (and is omitted) instead of
        # going negative.
        child = self._span("stage", 2.0)
        root = self._span("run", 1.0, children=[child])
        assert folded_stacks([root]) == ["run;stage 2000000"]


# ----------------------------------------------------------------------
# machine-readable report (satellite 2)
# ----------------------------------------------------------------------
class TestTraceReportJson:
    def test_report_json_shape(self, tmp_path):
        obs = ObsContext()
        with obs.tracer.span("suite"):
            with obs.tracer.span("run", benchmark="gzip"):
                pass
        obs.metrics.counter("repro_x_total").inc(2)
        path = tmp_path / "trace.jsonl"
        write_trace_jsonl(path, obs.tracer, obs.metrics, {"kind": "test"})
        payload = trace_report_json(read_trace_jsonl(path))
        assert payload["manifest"]["kind"] == "test"
        (root,) = payload["spans"]
        assert root["name"] == "suite"
        assert root["children"][0]["span_id"] == "main:2"
        assert payload["span_totals"]["run"]["count"] == 1
        assert any(m["name"] == "repro_x_total"
                   for m in payload["metrics"])
        json.dumps(payload)  # the whole document is JSON-native


# ----------------------------------------------------------------------
# HTTP endpoints
# ----------------------------------------------------------------------
class TestTelemetryServer:
    def _plane(self):
        obs = ObsContext()
        obs.metrics.counter("repro_runs_completed_total").inc(2)
        plane = TelemetryPlane(obs)
        plane.events.emit("suite_begin", runs=2)
        plane.progress.begin_suite(2)
        return plane

    def test_endpoints_serve_live_state(self):
        plane = self._plane()
        server = TelemetryServer(plane)
        port = server.start()
        try:
            base = f"http://127.0.0.1:{port}"
            body = _get(f"{base}/metrics")
            assert "repro_runs_completed_total 2" in body
            assert "# HELP repro_runs_completed_total" in body
            health = json.loads(_get(f"{base}/healthz"))
            assert health == {"status": "ok", "phase": "running"}
            progress = json.loads(_get(f"{base}/progress"))
            assert progress["runs"]["total"] == 2
            assert progress["counters"]["runs_completed"] == 2.0
            events = json.loads(_get(f"{base}/events"))
            assert events["events"][0]["kind"] == "suite_begin"
            server.mark_done()
            assert json.loads(_get(f"{base}/healthz"))["phase"] == "done"
        finally:
            server.stop()

    def test_unknown_route_is_404(self):
        server = TelemetryServer(self._plane())
        port = server.start()
        try:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _get(f"http://127.0.0.1:{port}/nope")
            assert excinfo.value.code == 404
        finally:
            server.stop()

    def test_scrape_reflects_live_folds(self):
        plane = self._plane()
        server = TelemetryServer(plane)
        port = server.start()
        try:
            plane.live.fold("s", {"seq": 1, "metrics": [
                {"name": "repro_x_total", "kind": "counter", "labels": {},
                 "value": 4.0},
            ]})
            body = _get(f"http://127.0.0.1:{port}/metrics")
            assert "repro_x_total 4" in body
            progress = json.loads(_get(f"http://127.0.0.1:{port}/progress"))
            assert progress["pending_streams"] == ["s"]
        finally:
            server.stop()


# ----------------------------------------------------------------------
# live plane over real campaigns (the headline pins; satellite 4)
# ----------------------------------------------------------------------
class TestLiveCampaign:
    @pytest.fixture
    def serial_payload(self, tmp_path, test_sampling, monkeypatch):
        monkeypatch.delenv(FAULTS_ENV, raising=False)
        runner = _runner(test_sampling, tmp_path / "serial-ref")
        return _payload(runner.run_suite(CONFIG_A, names=SUITE_NAMES))

    def _assert_live_equals_post_hoc(self, runner, plane):
        live = render_prometheus(plane.live.snapshot())
        post_hoc = render_prometheus(runner.obs.metrics)
        assert live == post_hoc
        assert plane.live.pending_streams() == []

    def test_local_pool_streams_and_reconciles(
            self, tmp_path, test_sampling, monkeypatch, serial_payload):
        monkeypatch.delenv(FAULTS_ENV, raising=False)
        runner = _runner(test_sampling, tmp_path / "pool")
        plane = _attach_plane(runner)
        outcome = runner.run_suite(
            CONFIG_A, names=SUITE_NAMES, pool=LocalPool(jobs=2)
        )
        assert outcome.ok
        assert _payload(outcome) == serial_payload
        self._assert_live_equals_post_hoc(runner, plane)
        kinds = {e["kind"] for e in plane.events.tail()}
        assert {"suite_begin", "run_done", "suite_end"} <= kinds
        assert plane.progress.to_dict()["runs"]["done"] == len(SUITE_NAMES)

    def test_dispatched_clean_live_equals_post_hoc(
            self, tmp_path, test_sampling, monkeypatch, serial_payload):
        monkeypatch.delenv(FAULTS_ENV, raising=False)
        runner = _runner(test_sampling, tmp_path / "dispatched")
        plane = _attach_plane(runner)
        outcome = runner.run_suite(
            CONFIG_A, names=SUITE_NAMES, pool=DispatchPool(workers=2)
        )
        assert outcome.ok
        assert _payload(outcome) == serial_payload
        self._assert_live_equals_post_hoc(runner, plane)
        kinds = {e["kind"] for e in plane.events.tail()}
        assert {"worker_spawn", "lease_grant", "lease_commit"} <= kinds

    @pytest.mark.parametrize("fault,policy_kwargs", [
        ("worker_exit:gzip:*:0", {"max_retries": 2}),
        ("heartbeat_drop:gzip:*:0", {"max_retries": 2}),
        ("partition:gzip:*:0", {"max_retries": 2}),
    ])
    def test_faulted_dispatch_never_double_counts(
            self, tmp_path, test_sampling, monkeypatch, serial_payload,
            fault, policy_kwargs):
        # A reclaimed-and-stolen run's partial deltas must be dropped
        # and its re-run's committed payload counted exactly once: the
        # final live state equals the post-hoc export byte for byte,
        # and results stay byte-identical to serial.
        monkeypatch.setenv(FAULTS_ENV, fault)
        runner = _runner(
            test_sampling, tmp_path / "faulted", **policy_kwargs
        )
        plane = _attach_plane(runner)
        lease_timeout = 0.5 if "heartbeat_drop" in fault else 2.0
        outcome = runner.run_suite(
            CONFIG_A, names=SUITE_NAMES,
            pool=DispatchPool(workers=2, lease_timeout=lease_timeout),
        )
        assert outcome.ok
        assert _payload(outcome) == serial_payload
        self._assert_live_equals_post_hoc(runner, plane)

    def test_midrun_scrape_of_dispatched_suite(
            self, tmp_path, test_sampling, monkeypatch):
        # The hard constraint: /metrics answers *while* the campaign
        # runs, and committed counters are monotone across scrapes.
        monkeypatch.delenv(FAULTS_ENV, raising=False)
        runner = _runner(test_sampling, tmp_path / "scrape")
        plane = _attach_plane(runner)
        server = TelemetryServer(plane)
        port = server.start()
        scrapes = []
        stop = threading.Event()

        def scraper():
            while not stop.is_set():
                scrapes.append((
                    _get(f"http://127.0.0.1:{port}/metrics"),
                    json.loads(_get(f"http://127.0.0.1:{port}/progress")),
                ))
                stop.wait(0.2)

        thread = threading.Thread(target=scraper, daemon=True)
        thread.start()
        try:
            outcome = runner.run_suite(
                CONFIG_A, names=SUITE_NAMES, pool=DispatchPool(workers=2)
            )
        finally:
            stop.set()
            thread.join(timeout=10)
            server.stop()
        assert outcome.ok
        assert scrapes, "no scrape completed while the suite ran"
        completions = [
            progress["counters"]["runs_completed"]
            for _, progress in scrapes
        ]
        assert completions == sorted(completions)  # monotone
        assert any(progress["phase"] == "running"
                   for _, progress in scrapes)
