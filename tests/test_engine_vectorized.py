"""Differential tests for the engine's vectorized backends.

The array-native trace builder and the vectorized functional profilers
claim *bit*-identity with the retained scalar reference implementations
— same flat arrays, same RNG draw order, same float accumulation order.
Every comparison here is therefore exact (``==`` / ``array_equal``),
never approximate.
"""

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import CONFIG_A
from repro.engine import (
    TRACE_ARRAY_FIELDS,
    FunctionalSimulator,
    Trace,
    TraceBuilder,
    build_trace,
    use_backend,
)
from repro.engine import backend as backend_mod
from repro.engine.backend import (
    BACKEND_ENV,
    get_backend,
    resolve_backend,
    set_backend,
)
from repro.errors import TraceError
from repro.harness import ExperimentRunner, ResultCache

from .conftest import TEST_SCALE

#: Derived arrays that must match in addition to the canonical fields.
DERIVED_FIELDS = (
    "flat_offsets",
    "rep_lengths",
    "segment_instructions",
    "seg_starts",
    "outer_starts",
)


def _assert_traces_identical(a: Trace, b: Trace) -> None:
    for field in TRACE_ARRAY_FIELDS + DERIVED_FIELDS:
        left, right = getattr(a, field), getattr(b, field)
        assert left.dtype == right.dtype, field
        assert np.array_equal(left, right), field
    assert a.total_instructions == b.total_instructions
    assert a.prologue_end == b.prologue_end


class TestEngineBackendControl:
    def test_default_is_vectorized(self):
        assert get_backend() == "vectorized"
        assert resolve_backend(None) == get_backend()

    def test_set_and_restore(self):
        previous = set_backend("scalar")
        try:
            assert get_backend() == "scalar"
        finally:
            set_backend(previous)

    def test_use_backend_scopes_selection(self):
        before = get_backend()
        with use_backend("scalar"):
            assert get_backend() == "scalar"
        assert get_backend() == before

    def test_unknown_backend_raises_trace_error(self, small_workload):
        with pytest.raises(TraceError):
            set_backend("turbo")
        with pytest.raises(TraceError):
            resolve_backend("numpy")
        with pytest.raises(TraceError):
            build_trace(small_workload, backend="bogus")

    def test_environment_variable_selects_backend(self, monkeypatch):
        monkeypatch.setattr(backend_mod.CONTROL, "_active", None)
        monkeypatch.setenv(BACKEND_ENV, "scalar")
        assert get_backend() == "scalar"

    def test_independent_of_analysis_backend(self):
        from repro.analysis import backend as analysis_backend

        with use_backend("scalar"):
            assert analysis_backend.get_backend() == "vectorized"


class TestTraceBuilderDifferential:
    def test_builders_bit_identical(self, small_workload):
        scalar = TraceBuilder(small_workload).build(backend="scalar")
        vector = TraceBuilder(small_workload).build(backend="vectorized")
        _assert_traces_identical(scalar, vector)

    def test_segment_views_equal(self, small_workload):
        scalar = TraceBuilder(small_workload).build(backend="scalar")
        vector = TraceBuilder(small_workload).build(backend="vectorized")
        assert scalar.segments == vector.segments

    @pytest.mark.parametrize("name", ["gzip", "vpr", "lucas"])
    def test_builders_bit_identical_across_workloads(self, name):
        # Jitter, noise and per-iteration scaling all vary by spec; the
        # RNG draw order is part of the trace's definition, so every
        # spec shape must agree between backends.
        from repro.workloads import load_workload

        workload = load_workload(name, scale=0.05)
        _assert_traces_identical(
            TraceBuilder(workload).build(backend="scalar"),
            TraceBuilder(workload).build(backend="vectorized"),
        )

    def test_global_switch_drives_builder(self, small_workload):
        with use_backend("scalar"):
            scalar = build_trace(small_workload)
        _assert_traces_identical(scalar, build_trace(small_workload))


class TestTraceArrayConstruction:
    def test_arrays_roundtrip(self, small_trace):
        clone = Trace(small_trace.workload, arrays=small_trace.arrays())
        _assert_traces_identical(small_trace, clone)
        assert clone.segments == small_trace.segments

    def test_segments_and_arrays_mutually_exclusive(self, small_trace):
        with pytest.raises(TraceError, match="not both"):
            Trace(
                small_trace.workload,
                list(small_trace.segments),
                arrays=small_trace.arrays(),
            )

    def test_array_length_mismatch_rejected(self, small_trace):
        arrays = small_trace.arrays()
        arrays["reps"] = arrays["reps"][:-1]
        with pytest.raises(TraceError):
            Trace(small_trace.workload, arrays=arrays)

    def test_bad_reps_rejected(self, small_trace):
        arrays = {k: v.copy() for k, v in small_trace.arrays().items()}
        arrays["reps"][0] = 0
        with pytest.raises(TraceError, match="reps"):
            Trace(small_trace.workload, arrays=arrays)

    def test_lazy_views_memoised(self, small_workload):
        trace = TraceBuilder(small_workload).build(backend="vectorized")
        seg = trace.segment_at(3)
        assert trace.segment_at(3) is seg
        assert trace.segments[3] is seg


class TestFunctionalDifferential:
    def test_run_bit_identical(self, small_functional):
        scalar = small_functional.run(backend="scalar")
        vector = small_functional.run(backend="vectorized")
        assert scalar.total_instructions == vector.total_instructions
        assert np.array_equal(scalar.block_counts, vector.block_counts)
        assert np.array_equal(
            scalar.block_instructions, vector.block_instructions
        )

    def test_coarse_profile_bit_identical(self, small_functional):
        scalar = small_functional.profile_coarse_intervals(backend="scalar")
        vector = small_functional.profile_coarse_intervals(
            backend="vectorized"
        )
        assert np.array_equal(scalar.starts, vector.starts)
        assert np.array_equal(scalar.instructions, vector.instructions)
        assert (scalar.bbv == vector.bbv).all()
        assert (scalar.segment_bbvs == vector.segment_bbvs).all()

    def test_coarse_profile_custom_bounds(self, small_functional,
                                          small_trace):
        bounds = small_trace.outer_bounds()[2:7]
        scalar = small_functional.profile_coarse_intervals(
            n_segments=7, bounds=bounds, backend="scalar"
        )
        vector = small_functional.profile_coarse_intervals(
            n_segments=7, bounds=bounds, backend="vectorized"
        )
        assert (scalar.bbv == vector.bbv).all()
        assert (scalar.segment_bbvs == vector.segment_bbvs).all()

    def test_structure_profile_identical(self, small_functional):
        assert small_functional.profile_structures(backend="scalar") == \
            small_functional.profile_structures(backend="vectorized")

    @pytest.mark.parametrize("backend", ["scalar", "vectorized"])
    def test_empty_bounds_error_matches(self, small_functional, backend):
        bounds = np.array([[100, 100]], dtype=np.int64)
        with pytest.raises(TraceError, match="instance 0: empty bounds"):
            small_functional.profile_coarse_intervals(
                bounds=bounds, backend=backend
            )

    @pytest.mark.parametrize("backend", ["scalar", "vectorized"])
    def test_bad_clip_error_matches(self, small_functional, small_trace,
                                    backend):
        total = small_trace.total_instructions
        bounds = np.array([[0, 50], [10, total + 1]], dtype=np.int64)
        with pytest.raises(TraceError, match="bad clip range"):
            small_functional.profile_coarse_intervals(
                bounds=bounds, backend=backend
            )

    def test_first_offending_instance_reported(self, small_functional,
                                               small_trace):
        # Two bad instances: both backends must report the *first* one.
        total = small_trace.total_instructions
        bounds = np.array([[0, 50], [7, 7], [10, total + 1]],
                          dtype=np.int64)
        for backend in ("scalar", "vectorized"):
            with pytest.raises(TraceError, match="instance 1"):
                small_functional.profile_coarse_intervals(
                    bounds=bounds, backend=backend
                )


class TestCoarseProfileProperties:
    """Randomized bit-identity: arbitrary sub-ranges and chunk counts."""

    @settings(max_examples=25, deadline=None)
    @given(
        lo_frac=st.floats(0.0, 0.9),
        span_frac=st.floats(0.01, 1.0),
        n_segments=st.integers(1, 9),
        n_instances=st.integers(1, 6),
    )
    def test_random_bounds_bit_identical(
        self, shared_functional, lo_frac, span_frac, n_segments, n_instances
    ):
        trace = shared_functional.trace
        total = trace.total_instructions
        start = int(lo_frac * (total - n_instances))
        end = min(total, start + max(n_instances,
                                     int(span_frac * (total - start))))
        edges = np.linspace(start, end, n_instances + 1).astype(np.int64)
        edges = np.unique(edges)
        if len(edges) < 2:
            return
        bounds = np.stack([edges[:-1], edges[1:]], axis=1)
        scalar = shared_functional.profile_coarse_intervals(
            n_segments=n_segments, bounds=bounds, backend="scalar"
        )
        vector = shared_functional.profile_coarse_intervals(
            n_segments=n_segments, bounds=bounds, backend="vectorized"
        )
        assert (scalar.bbv == vector.bbv).all()
        assert (scalar.segment_bbvs == vector.segment_bbvs).all()

    @settings(max_examples=10, deadline=None)
    @given(scale=st.floats(0.02, 0.06), seed_bump=st.integers(0, 3))
    def test_random_specs_build_identically(self, scale, seed_bump):
        from dataclasses import replace

        from repro.workloads import generate_workload, get_spec, scaled_spec

        spec = scaled_spec(get_spec("vpr"), scale)
        spec = replace(spec, seed=spec.seed + seed_bump)
        workload = generate_workload(spec)
        _assert_traces_identical(
            TraceBuilder(workload).build(backend="scalar"),
            TraceBuilder(workload).build(backend="vectorized"),
        )


@pytest.fixture(scope="module")
def shared_functional():
    """A module-scoped functional simulator for the property tests."""
    from repro.workloads import generate_workload, get_spec, scaled_spec

    spec = scaled_spec(get_spec("gzip"), TEST_SCALE)
    return FunctionalSimulator(build_trace(generate_workload(spec)))


class TestEndToEndIdentity:
    """The whole pipeline — plans, CPI deviations, cache digests — must
    not depend on which engine backend produced the trace."""

    def _run(self, tmp_path, which):
        runner = ExperimentRunner(
            cache=ResultCache(directory=tmp_path / which),
            workload_scale=TEST_SCALE,
            methods=("simpoint", "coasts"),
            diagnostics=False,
        )
        with use_backend(which):
            run = runner.run_benchmark("gzip", CONFIG_A)
        return json.dumps(run.to_dict(), sort_keys=True)

    def test_pipeline_identical_across_backends(self, tmp_path):
        assert self._run(tmp_path, "scalar") == \
            self._run(tmp_path, "vectorized")
