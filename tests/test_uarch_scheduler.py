"""Tests for the static block scheduler."""

import pytest

from repro.config import CONFIG_A, CONFIG_B
from repro.isa import BasicBlock, Instruction, Opcode
from repro.uarch import BlockScheduler, effective_mlp


def block_of(instructions):
    return BasicBlock(block_id=0, name="b", instructions=tuple(instructions))


class TestBlockScheduler:
    def test_width_bound_for_independent_alu(self):
        """16 independent ALU ops on an 8-wide machine: 2 cycles."""
        insts = [Instruction(Opcode.IALU, dest=i % 32, srcs=())
                 for i in range(16)]
        timing = BlockScheduler(CONFIG_A).schedule(block_of(insts))
        assert timing.throughput_cycles == pytest.approx(2.0)
        assert timing.base_cycles >= 2.0

    def test_fu_bound_dominates_for_fp_heavy_block(self):
        """8 FP adds on 2 FP adders: 4 cycles despite 8-wide issue."""
        insts = [Instruction(Opcode.FADD, dest=i, srcs=()) for i in range(8)]
        timing = BlockScheduler(CONFIG_A).schedule(block_of(insts))
        assert timing.throughput_cycles == pytest.approx(4.0)

    def test_config_b_has_fewer_load_store_units(self):
        insts = [
            Instruction(Opcode.LOAD, dest=i, mem_region=0, srcs=())
            for i in range(8)
        ]
        block = block_of(insts)
        a = BlockScheduler(CONFIG_A).schedule(block)
        b = BlockScheduler(CONFIG_B).schedule(block)
        # A has 4 load/store units, B has 2.
        assert b.throughput_cycles == pytest.approx(2 * a.throughput_cycles)

    def test_critical_path_follows_dependences(self):
        insts = [
            Instruction(Opcode.IALU, dest=1, srcs=()),
            Instruction(Opcode.IMUL, dest=2, srcs=(1,)),
            Instruction(Opcode.IALU, dest=3, srcs=(2,)),
        ]
        timing = BlockScheduler(CONFIG_A).schedule(block_of(insts))
        assert timing.critical_path == 1 + 3 + 1

    def test_load_latency_on_critical_path(self):
        insts = [
            Instruction(Opcode.LOAD, dest=1, mem_region=0, srcs=()),
            Instruction(Opcode.IALU, dest=2, srcs=(1,)),
        ]
        timing = BlockScheduler(CONFIG_A).schedule(block_of(insts))
        assert timing.critical_path == (CONFIG_A.dcache.latency + 1) + 1

    def test_rob_derates_long_chains(self):
        """A long serial chain is partially hidden by ROB overlap."""
        insts = []
        for i in range(16):
            insts.append(Instruction(Opcode.IALU, dest=1, srcs=(1,)))
        timing = BlockScheduler(CONFIG_A).schedule(block_of(insts))
        overlap = CONFIG_A.rob_entries / 16
        assert timing.base_cycles == pytest.approx(
            max(timing.throughput_cycles, 16 / overlap)
        )

    def test_schedule_program_vector(self, small_trace):
        cycles = BlockScheduler(CONFIG_A).schedule_program(small_trace.program)
        assert len(cycles) == small_trace.program.n_blocks
        assert (cycles > 0).all()


class TestEffectiveMlp:
    def test_in_range(self):
        assert 1.0 <= effective_mlp(CONFIG_A) <= 4.0

    def test_monotone_in_lsq(self):
        from dataclasses import replace

        deeper = replace(CONFIG_A, name="deep", lsq_entries=128)
        assert effective_mlp(deeper) >= effective_mlp(CONFIG_A)
