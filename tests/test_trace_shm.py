"""Tests for zero-copy trace sharing over POSIX shared memory.

Covers the three promises of :mod:`repro.engine.shm`: attached traces
are byte-identical read-only views of the parent's arrays, the parallel
suite built on them matches the serial path exactly (even across an
injected worker kill), and the parent never leaks ``/dev/shm`` segments
— teardown is owned by the driver's ``finally``, not by the workers.
"""

import json
import os
from pathlib import Path

import numpy as np
import pytest

from repro.config import CONFIG_A
from repro.engine import (
    FunctionalSimulator,
    attach_or_none,
    attach_trace,
    share_trace,
    shm_enabled,
)
from repro.engine.shm import SHM_ENV
from repro.errors import TraceError
from repro.harness import ExperimentRunner, ResultCache
from repro.harness.faults import FAULTS_ENV
from repro.obs import (
    TRACE_SHM_ATTACHED,
    TRACE_SHM_BYTES,
    TRACE_SHM_FALLBACKS,
    TRACE_SHM_SHARED,
    MetricsRegistry,
)

from .conftest import TEST_SCALE

SHM_DIR = Path("/dev/shm")


def _repro_segments():
    if not SHM_DIR.is_dir():  # pragma: no cover - non-Linux fallback
        return []
    return [p.name for p in SHM_DIR.iterdir()
            if p.name.startswith("repro-trace-")]


class TestShareAttach:
    def test_roundtrip_bit_identical(self, small_trace, small_workload):
        metrics = MetricsRegistry()
        segment, handle = share_trace(small_trace, metrics=metrics)
        try:
            attached = attach_trace(small_workload, handle, metrics=metrics)
            for field, array in small_trace.arrays().items():
                assert np.array_equal(array, attached.arrays()[field]), field
            assert attached.total_instructions == \
                small_trace.total_instructions
            assert metrics.value(TRACE_SHM_SHARED) == 1.0
            assert metrics.value(TRACE_SHM_ATTACHED) == 1.0
            assert metrics.value(TRACE_SHM_BYTES) > 0.0
            del attached
        finally:
            segment.close()
            segment.unlink()

    def test_attached_views_are_read_only(self, small_trace,
                                          small_workload):
        segment, handle = share_trace(small_trace)
        try:
            attached = attach_trace(small_workload, handle)
            with pytest.raises(ValueError):
                attached.reps[0] = 99
            with pytest.raises(ValueError):
                attached.flat_blocks[0] = 1
            del attached
        finally:
            segment.close()
            segment.unlink()

    def test_attached_trace_profiles_identically(self, small_trace,
                                                 small_workload):
        segment, handle = share_trace(small_trace)
        try:
            attached = attach_trace(small_workload, handle)
            local = FunctionalSimulator(small_trace).run()
            shared = FunctionalSimulator(attached).run()
            assert np.array_equal(local.block_counts, shared.block_counts)
            del attached
        finally:
            segment.close()
            segment.unlink()

    def test_handle_is_small_and_picklable(self, small_trace):
        segment, handle = share_trace(small_trace)
        try:
            # The whole point: the payload ships a name + offsets, not
            # the arrays themselves.
            assert len(json.dumps(handle)) < 1000
        finally:
            segment.close()
            segment.unlink()

    def test_attach_failure_falls_back(self, small_workload, small_trace):
        metrics = MetricsRegistry()
        segment, handle = share_trace(small_trace)
        segment.close()
        segment.unlink()
        with pytest.raises(TraceError, match="cannot attach"):
            attach_trace(small_workload, handle)
        assert attach_or_none(small_workload, handle,
                              metrics=metrics) is None
        assert metrics.value(TRACE_SHM_FALLBACKS) == 1.0

    def test_no_segments_leaked(self, small_trace, small_workload):
        before = set(_repro_segments())
        segment, handle = share_trace(small_trace)
        attached = attach_trace(small_workload, handle)
        del attached
        segment.close()
        segment.unlink()
        assert set(_repro_segments()) <= before

    def test_env_gate(self, monkeypatch):
        assert shm_enabled()
        monkeypatch.setenv(SHM_ENV, "0")
        assert not shm_enabled()
        monkeypatch.setenv(SHM_ENV, "off")
        assert not shm_enabled()
        monkeypatch.setenv(SHM_ENV, "1")
        assert shm_enabled()


def _suite_payload(sampling, cache_dir, jobs):
    runner = ExperimentRunner(
        sampling=sampling,
        cache=ResultCache(directory=cache_dir),
        workload_scale=TEST_SCALE,
        jobs=jobs,
    )
    outcome = runner.run_suite(CONFIG_A, names=("gzip", "lucas"))
    assert outcome.ok
    return runner, [
        json.dumps(run.to_dict(), sort_keys=True) for run in outcome
    ]


class TestParallelSuiteOverShm:
    def test_parallel_shm_matches_serial(self, tmp_path, test_sampling):
        before = set(_repro_segments())
        _, serial = _suite_payload(test_sampling, tmp_path / "serial",
                                   jobs=1)
        runner, parallel = _suite_payload(test_sampling,
                                          tmp_path / "parallel", jobs=2)
        assert parallel == serial
        metrics = runner.obs.metrics
        # One segment per distinct benchmark; every worker run attached.
        assert metrics.value(TRACE_SHM_SHARED) == 2.0
        assert metrics.value(TRACE_SHM_ATTACHED) == 2.0
        assert metrics.value(TRACE_SHM_FALLBACKS) == 0.0
        assert set(_repro_segments()) <= before

    def test_disabled_gate_still_matches_serial(self, tmp_path,
                                                test_sampling,
                                                monkeypatch):
        monkeypatch.setenv(SHM_ENV, "0")
        _, serial = _suite_payload(test_sampling, tmp_path / "serial",
                                   jobs=1)
        runner, parallel = _suite_payload(test_sampling,
                                          tmp_path / "parallel", jobs=2)
        assert parallel == serial
        assert runner.obs.metrics.value(TRACE_SHM_SHARED) == 0.0

    def test_worker_kill_leaves_no_segments(self, tmp_path, test_sampling,
                                            monkeypatch):
        # Kill a worker *after* it attached the shared trace (the
        # profiling stage runs on the attached view); the pool respawns,
        # the retry completes byte-identically, and the parent still
        # unlinks every segment.
        before = set(_repro_segments())
        _, serial = _suite_payload(test_sampling, tmp_path / "serial",
                                   jobs=1)
        monkeypatch.setenv(FAULTS_ENV, "kill:gzip:profiling:0")
        runner, parallel = _suite_payload(test_sampling,
                                          tmp_path / "killed", jobs=2)
        assert parallel == serial
        metrics = runner.obs.metrics
        assert metrics.value("repro_worker_crashes_total") >= 1.0
        assert set(_repro_segments()) <= before
