"""Tests for the instruction-level OoO reference simulator."""

import pytest

from repro.config import CONFIG_A, CONFIG_B
from repro.detailed import OoOSimulator, TimingSimulator
from repro.errors import SimulationError


@pytest.fixture(scope="module")
def ooo(small_trace):
    return OoOSimulator(small_trace, CONFIG_A, seed=1)


class TestOoOSimulator:
    def test_simulates_requested_range(self, ooo):
        result = ooo.simulate_range(0, 5000)
        assert result.instructions >= 5000
        assert result.cycles > 0

    def test_cap_limits_instructions(self, ooo, small_trace):
        result = ooo.simulate_range(0, small_trace.total_instructions,
                                    max_instructions=3000)
        assert result.instructions == 3000

    def test_cpi_reasonable(self, ooo):
        result = ooo.simulate_prefix(8000)
        cpi = result.cpi
        assert 1.0 / CONFIG_A.issue_width <= cpi < 50

    def test_counts_branches_and_memory(self, ooo):
        result = ooo.simulate_prefix(8000)
        assert result.branches > 0
        assert result.l1d_accesses > 0
        assert 0 <= result.mispredict_rate <= 1

    def test_empty_range_rejected(self, ooo):
        with pytest.raises(SimulationError):
            ooo.simulate_range(5, 5)

    def test_agrees_with_block_level_model(self, ooo, small_trace):
        """The two engines must agree on CPI within a model-error band on
        the same prefix (DESIGN.md: the OoO core is a cross-check)."""
        n = 20_000
        ooo_result = ooo.simulate_range(0, n)
        timing = TimingSimulator(small_trace, CONFIG_A)
        block_result = timing.simulate_range(0, n)
        ratio = ooo_result.cpi / block_result.cpi
        assert 0.3 < ratio < 3.0

    def test_config_sensitivity_direction_matches(self, small_trace):
        """Both engines must rank configs identically on the same prefix."""
        n = 15_000
        ooo_a = OoOSimulator(small_trace, CONFIG_A, seed=1).simulate_range(0, n)
        ooo_b = OoOSimulator(small_trace, CONFIG_B, seed=1).simulate_range(0, n)
        blk_a = TimingSimulator(small_trace, CONFIG_A).simulate_range(0, n)
        blk_b = TimingSimulator(small_trace, CONFIG_B).simulate_range(0, n)
        assert (ooo_a.cycles < ooo_b.cycles) == (blk_a.cycles < blk_b.cycles)
