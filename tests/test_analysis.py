"""Tests for BBV utilities, projection, PCA and distance helpers."""

import numpy as np
import pytest

from repro.analysis import (
    PCA,
    RandomProjection,
    concat_signatures,
    earliest_member,
    first_component,
    nearest_to_centroid,
    normalize_rows,
    project_bbvs,
    squared_distances,
)
from repro.errors import ClusteringError


class TestNormalizeRows:
    def test_rows_sum_to_one(self):
        data = np.array([[1.0, 3.0], [2.0, 2.0]])
        normalized = normalize_rows(data)
        assert np.allclose(normalized.sum(axis=1), 1.0)

    def test_zero_rows_stay_zero(self):
        data = np.array([[0.0, 0.0], [1.0, 1.0]])
        normalized = normalize_rows(data)
        assert np.allclose(normalized[0], 0.0)

    def test_rejects_non_2d(self):
        with pytest.raises(ClusteringError):
            normalize_rows(np.zeros(3))


class TestRandomProjection:
    def test_shape_and_determinism(self):
        projection = RandomProjection(100, 15, seed=3)
        data = np.random.default_rng(0).random((20, 100))
        out = projection.project(data)
        assert out.shape == (20, 15)
        again = RandomProjection(100, 15, seed=3).project(data)
        assert np.array_equal(out, again)

    def test_preserves_relative_distances(self):
        """Johnson-Lindenstrauss sanity: close pairs stay closer than far
        pairs, on average."""
        rng = np.random.default_rng(7)
        base = rng.random((1, 200))
        close = base + rng.normal(0, 0.01, (50, 200))
        far = rng.random((50, 200))
        projection = RandomProjection(200, 15, seed=1)
        p_base = projection.project(base)
        d_close = np.linalg.norm(projection.project(close) - p_base, axis=1)
        d_far = np.linalg.norm(projection.project(far) - p_base, axis=1)
        assert d_close.mean() < d_far.mean()

    def test_dimension_mismatch(self):
        projection = RandomProjection(10, 4)
        with pytest.raises(ClusteringError):
            projection.project(np.zeros((3, 11)))

    def test_project_bbvs_normalizes_first(self):
        bbvs = np.array([[2.0, 0.0], [4.0, 0.0]])
        out = project_bbvs(bbvs, dim=3, seed=0)
        assert np.allclose(out[0], out[1])


class TestConcatSignatures:
    def test_shape(self):
        seg_bbvs = np.random.default_rng(2).random((6, 4, 30))
        signatures = concat_signatures(seg_bbvs, dim=15, seed=0)
        assert signatures.shape == (6, 60)
        assert np.allclose(signatures.sum(axis=1), 1.0)

    def test_preserves_temporal_structure(self):
        """Instances whose sub-chunks are permuted get different signatures
        even though their total BBVs coincide."""
        rng = np.random.default_rng(5)
        a = rng.random((1, 3, 20))
        b = a[:, ::-1, :].copy()
        signatures = concat_signatures(
            np.concatenate([a, b]), dim=10, seed=0
        )
        assert not np.allclose(signatures[0], signatures[1])

    def test_rejects_wrong_rank(self):
        with pytest.raises(ClusteringError):
            concat_signatures(np.zeros((3, 4)), dim=5)


class TestPCA:
    def test_first_component_separates_clusters(self):
        rng = np.random.default_rng(0)
        a = rng.normal(0, 0.1, (30, 5))
        b = rng.normal(4, 0.1, (30, 5))
        values = first_component(np.vstack([a, b]))
        assert (values[:30].mean() < values[30:].mean()) or \
            (values[:30].mean() > values[30:].mean())
        assert abs(values[:30].mean() - values[30:].mean()) > 5

    def test_transform_requires_fit(self):
        with pytest.raises(ClusteringError):
            PCA().transform(np.zeros((3, 2)))

    def test_explained_variance_ordered(self):
        rng = np.random.default_rng(1)
        data = rng.normal(size=(50, 6)) * np.array([10, 5, 1, 1, 1, 1])
        pca = PCA(n_components=3).fit(data)
        ev = pca.explained_variance_
        assert ev[0] >= ev[1] >= ev[2]

    def test_needs_two_samples(self):
        with pytest.raises(ClusteringError):
            PCA().fit(np.zeros((1, 4)))


class TestDistances:
    def test_squared_distances_match_numpy(self):
        rng = np.random.default_rng(3)
        data = rng.random((10, 4))
        centers = rng.random((3, 4))
        out = squared_distances(data, centers)
        brute = ((data[:, None, :] - centers[None, :, :]) ** 2).sum(axis=2)
        assert np.allclose(out, brute)

    def test_nearest_to_centroid_picks_closest_member(self):
        data = np.array([[0.0], [1.0], [10.0], [11.0]])
        labels = np.array([0, 0, 1, 1])
        centroids = np.array([[0.4], [10.6]])
        picks = nearest_to_centroid(data, labels, centroids)
        assert picks.tolist() == [0, 3]

    def test_nearest_handles_empty_cluster(self):
        data = np.array([[0.0], [1.0]])
        labels = np.array([0, 0])
        centroids = np.array([[0.5], [9.0]])
        picks = nearest_to_centroid(data, labels, centroids)
        assert picks[1] == -1

    def test_earliest_member_picks_first(self):
        labels = np.array([1, 0, 1, 0, 2])
        picks = earliest_member(labels, 3)
        assert picks.tolist() == [1, 0, 4]
