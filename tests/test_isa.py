"""Tests for the ISA layer: opcodes, instructions, blocks, programs."""

import pytest

from repro.errors import ProgramError
from repro.isa import (
    BasicBlock,
    FU_CLASS,
    FuClass,
    INSTRUCTION_BYTES,
    Instruction,
    InstructionMix,
    LATENCY,
    Loop,
    LoopNest,
    Opcode,
    ProgramBuilder,
    is_control,
    is_memory,
)


class TestOpcodes:
    def test_every_opcode_has_latency_and_fu(self):
        for opcode in Opcode:
            assert opcode in LATENCY
            assert opcode in FU_CLASS

    def test_memory_classification(self):
        assert is_memory(Opcode.LOAD)
        assert is_memory(Opcode.STORE)
        assert not is_memory(Opcode.IALU)

    def test_control_classification(self):
        assert is_control(Opcode.BRANCH)
        assert is_control(Opcode.JUMP)
        assert not is_control(Opcode.LOAD)

    def test_memory_ops_use_load_store_units(self):
        assert FU_CLASS[Opcode.LOAD] is FuClass.LOAD_STORE
        assert FU_CLASS[Opcode.STORE] is FuClass.LOAD_STORE

    def test_divide_slower_than_add(self):
        assert LATENCY[Opcode.IDIV] > LATENCY[Opcode.IALU]
        assert LATENCY[Opcode.FDIV] > LATENCY[Opcode.FADD]


class TestInstruction:
    def test_load_requires_region(self):
        with pytest.raises(ProgramError):
            Instruction(Opcode.LOAD, dest=1)

    def test_load_requires_dest(self):
        with pytest.raises(ProgramError):
            Instruction(Opcode.LOAD, dest=None, mem_region=0)

    def test_alu_must_not_carry_region(self):
        with pytest.raises(ProgramError):
            Instruction(Opcode.IALU, dest=1, mem_region=0)

    def test_branch_writes_no_register(self):
        with pytest.raises(ProgramError):
            Instruction(Opcode.BRANCH, dest=3)

    def test_store_has_no_dest(self):
        inst = Instruction(Opcode.STORE, srcs=(1, 2), mem_region=0)
        assert inst.dest is None
        assert inst.is_memory

    def test_negative_stride_rejected(self):
        with pytest.raises(ProgramError):
            Instruction(Opcode.LOAD, dest=1, mem_region=0, mem_stride=-8)


def _block(instructions, **kwargs):
    return BasicBlock(block_id=0, name="b", instructions=tuple(instructions),
                      **kwargs)


class TestBasicBlock:
    def test_rejects_empty_block(self):
        with pytest.raises(ProgramError):
            _block([])

    def test_rejects_mid_block_control(self):
        insts = [
            Instruction(Opcode.BRANCH),
            Instruction(Opcode.IALU, dest=1),
        ]
        with pytest.raises(ProgramError):
            _block(insts)

    def test_terminator_and_branch_detection(self):
        block = _block([
            Instruction(Opcode.IALU, dest=1),
            Instruction(Opcode.BRANCH, srcs=(1,)),
        ])
        assert block.ends_in_branch
        assert block.terminator.opcode is Opcode.BRANCH

    def test_memory_instructions_in_order(self):
        block = _block([
            Instruction(Opcode.LOAD, dest=1, mem_region=0, mem_offset=0),
            Instruction(Opcode.IALU, dest=2),
            Instruction(Opcode.STORE, srcs=(2,), mem_region=0, mem_offset=8),
        ])
        assert block.load_count == 1
        assert block.store_count == 1
        offsets = [i.mem_offset for i in block.memory_instructions]
        assert offsets == [0, 8]

    def test_instruction_lines_cover_block(self):
        block = BasicBlock(
            block_id=0, name="b", address=100,
            instructions=tuple(Instruction(Opcode.IALU, dest=1)
                               for _ in range(20)),
        )
        lines = block.instruction_lines(32)
        assert lines.start == 100 // 32
        assert lines.stop == (100 + 20 * INSTRUCTION_BYTES - 1) // 32 + 1


class TestLoopNest:
    def test_header_must_be_in_body(self):
        with pytest.raises(ProgramError):
            Loop(loop_id=0, header=5, blocks=frozenset({1, 2}))

    def test_nest_depth_consistency(self):
        outer = Loop(loop_id=0, header=0, blocks=frozenset({0, 1, 2}))
        bad_child = Loop(loop_id=1, header=1, blocks=frozenset({1, 2}),
                         parent=0, depth=2)
        with pytest.raises(ProgramError):
            LoopNest((outer, bad_child))

    def test_child_must_be_subset_of_parent(self):
        outer = Loop(loop_id=0, header=0, blocks=frozenset({0, 1}))
        escapee = Loop(loop_id=1, header=1, blocks=frozenset({1, 9}),
                       parent=0, depth=1)
        with pytest.raises(ProgramError):
            LoopNest((outer, escapee))

    def test_top_level_and_children(self):
        outer = Loop(loop_id=0, header=0, blocks=frozenset({0, 1, 2}))
        inner = Loop(loop_id=1, header=1, blocks=frozenset({1, 2}),
                     parent=0, depth=1)
        nest = LoopNest((outer, inner))
        assert [l.loop_id for l in nest.top_level] == [0]
        assert [l.loop_id for l in nest.children_of(0)] == [1]
        assert nest.innermost_containing(1).loop_id == 1
        assert nest.innermost_containing(0).loop_id == 0
        assert nest.loop_of_header(1).loop_id == 1
        assert nest.loop_of_header(9) is None


class TestInstructionMix:
    def test_fractions_must_not_exceed_one(self):
        with pytest.raises(ProgramError):
            InstructionMix(load=0.6, store=0.5)

    def test_implied_alu_fraction(self):
        mix = InstructionMix(load=0.2, store=0.1, fp=0.3, mul_div=0.05)
        assert mix.ialu == pytest.approx(0.35)


class TestProgramBuilder:
    def test_builds_valid_program(self):
        builder = ProgramBuilder("test", seed=1)
        region = builder.add_region("data", 4096)
        b0 = builder.add_block(
            "entry", 10, mix=InstructionMix(load=0.0, store=0.0),
            terminator="jump",
        )
        b1 = builder.add_block(
            "loop", 20, mix=InstructionMix(load=0.3, store=0.1),
            region=region, terminator="branch",
        )
        builder.add_edge(b0, b1)
        builder.add_edge(b1, b1)
        builder.add_loop(b1, [b1])
        program = builder.build()
        assert program.n_blocks == 2
        assert program.block(b1).size == 20
        assert len(program.loops) == 1

    def test_blocks_have_disjoint_addresses(self):
        builder = ProgramBuilder("test", seed=1)
        region = builder.add_region("d", 4096)
        ids = [builder.add_block(f"b{i}", 12, region=region)
               for i in range(5)]
        program = builder.build()
        spans = [(program.block(i).address, program.block(i).end_address)
                 for i in ids]
        for (_, end), (start, _) in zip(spans, spans[1:]):
            assert start >= end

    def test_mix_is_respected(self):
        builder = ProgramBuilder("test", seed=2)
        region = builder.add_region("data", 8192)
        block_id = builder.add_block(
            "b", 41, mix=InstructionMix(load=0.25, store=0.10),
            region=region,
        )
        block = builder.build().block(block_id)
        assert block.load_count == pytest.approx(10, abs=1)
        assert block.store_count == pytest.approx(4, abs=1)

    def test_memory_mix_without_region_fails(self):
        builder = ProgramBuilder("test", seed=1)
        with pytest.raises(ProgramError):
            builder.add_block("b", 20, mix=InstructionMix(load=0.3))

    def test_deterministic_given_seed(self):
        def build():
            builder = ProgramBuilder("t", seed=7)
            region = builder.add_region("d", 4096)
            builder.add_block("b", 30, mix=InstructionMix(load=0.2),
                              region=region)
            return builder.build()

        p1, p2 = build(), build()
        assert p1.blocks == p2.blocks

    def test_region_layout_page_aligned_disjoint(self):
        builder = ProgramBuilder("t", seed=0)
        r0 = builder.add_region("a", 5000)
        r1 = builder.add_region("b", 100)
        builder.add_block("entry", 4, mix=InstructionMix(load=0.0, store=0.0))
        program = builder.build()
        a, b = program.region(r0), program.region(r1)
        assert a.base % 4096 == 0 and b.base % 4096 == 0
        assert b.base >= a.base + a.size

    def test_unknown_edge_rejected(self):
        builder = ProgramBuilder("t", seed=0)
        builder.add_block("b", 4, mix=InstructionMix(load=0.0, store=0.0))
        with pytest.raises(ProgramError):
            builder.add_edge(0, 3)
