"""Tests for SimPoint, EarlySP, COASTS and the multi-level framework."""

import numpy as np
import pytest

from repro.errors import SamplingError
from repro.sampling import Coasts, EarlySimPoint, MultiLevelSampler, SimPoint


@pytest.fixture(scope="module")
def simpoint_plan(small_fine_profile, test_sampling):
    return SimPoint(test_sampling).sample(small_fine_profile, benchmark="gzip")


@pytest.fixture(scope="module")
def coasts_plan(small_trace, test_sampling):
    return Coasts(test_sampling).sample(small_trace)


class TestSimPoint:
    def test_plan_is_valid(self, simpoint_plan, small_trace):
        plan = simpoint_plan
        assert plan.method == "simpoint"
        assert plan.total_instructions == small_trace.total_instructions
        assert 1 <= plan.n_points <= 10
        assert abs(sum(p.weight for p in plan.points) - 1.0) < 1e-6

    def test_points_are_interval_aligned(self, simpoint_plan, test_sampling,
                                         small_trace):
        size = test_sampling.fine_interval_size
        for p in simpoint_plan.points:
            assert p.start % size == 0
            assert p.size <= size

    def test_interval_size_mismatch_rejected(self, small_fine_profile,
                                             test_sampling):
        sampler = SimPoint(test_sampling, interval_size=2000)
        with pytest.raises(SamplingError):
            sampler.sample(small_fine_profile)

    def test_deterministic(self, small_fine_profile, test_sampling):
        a = SimPoint(test_sampling).sample(small_fine_profile)
        b = SimPoint(test_sampling).sample(small_fine_profile)
        assert a.points == b.points

    def test_subsampled_clustering_close_to_full(self, small_fine_profile,
                                                 test_sampling):
        full = SimPoint(test_sampling).sample(small_fine_profile)
        sub = SimPoint(test_sampling, max_cluster_samples=60).sample(
            small_fine_profile
        )
        assert abs(sub.n_clusters - full.n_clusters) <= 3


class TestEarlySimPoint:
    def test_never_later_than_simpoint(self, small_fine_profile,
                                       test_sampling, simpoint_plan):
        early = EarlySimPoint(test_sampling).sample(small_fine_profile)
        assert early.last_end <= simpoint_plan.last_end

    def test_zero_tolerance_equals_simpoint_choice(self, small_fine_profile,
                                                   test_sampling):
        early = EarlySimPoint(test_sampling, tolerance=0.0).sample(
            small_fine_profile
        )
        base = SimPoint(test_sampling).sample(small_fine_profile)
        assert early.n_clusters == base.n_clusters
        # with zero slack only exact-distance ties may differ
        assert early.detail_instructions == base.detail_instructions

    def test_negative_tolerance_rejected(self, test_sampling):
        with pytest.raises(SamplingError):
            EarlySimPoint(test_sampling, tolerance=-0.1)


class TestCoasts:
    def test_boundary_collection_filters_init_loop(self, small_trace,
                                                   test_sampling):
        info = Coasts(test_sampling).collect_boundaries(small_trace)
        assert small_trace.workload.outer_loop_id in info.kept_loops
        assert small_trace.workload.init_loop_id in info.discarded_loops
        assert info.n_intervals == small_trace.spec.n_outer_iterations

    def test_plan_uses_earliest_instances(self, coasts_plan, small_trace):
        """Every COASTS point is the first instance of its phase, so all
        points sit early in the program."""
        plan = coasts_plan
        assert plan.n_points <= 3  # Kmax
        bounds = small_trace.outer_bounds()
        for p in plan.points:
            matches = np.flatnonzero(
                (bounds[:, 0] == p.start) & (bounds[:, 1] == p.end)
            )
            assert len(matches) == 1

    def test_kmax_limits_phases(self, small_trace, test_sampling):
        from dataclasses import replace

        sampler = Coasts(replace(test_sampling, coarse_kmax=1))
        plan = sampler.sample(small_trace)
        assert plan.n_clusters == 1
        assert plan.n_points == 1

    def test_weights_cover_main_loop(self, coasts_plan, small_trace):
        assert sum(p.weight for p in coasts_plan.points) == \
            pytest.approx(1.0)

    def test_coasts_much_less_functional_than_simpoint(self, coasts_plan,
                                                       simpoint_plan):
        """The paper's core claim at plan level."""
        assert coasts_plan.functional_fraction < \
            simpoint_plan.functional_fraction

    def test_intervals_are_coarse(self, coasts_plan, simpoint_plan):
        assert coasts_plan.mean_interval_size > \
            3 * simpoint_plan.mean_interval_size


class TestMultiLevel:
    def test_resamples_only_oversized_points(self, small_trace,
                                             test_sampling, coasts_plan):
        plan = MultiLevelSampler(test_sampling).sample(
            small_trace, coarse_plan=coasts_plan
        )
        for p in plan.points:
            if p.size > test_sampling.resample_threshold:
                assert p.is_resampled
            else:
                assert not p.is_resampled

    def test_children_weights_compose(self, small_trace, test_sampling):
        plan = MultiLevelSampler(test_sampling).sample(small_trace)
        for p in plan.points:
            if p.children:
                assert sum(c.weight for c in p.children) == \
                    pytest.approx(p.weight)

    def test_less_detail_than_coasts(self, small_trace, test_sampling,
                                     coasts_plan):
        """Re-sampling cuts detailed-simulation instructions (the paper's
        second-level claim)."""
        plan = MultiLevelSampler(test_sampling).sample(
            small_trace, coarse_plan=coasts_plan
        )
        assert plan.detail_instructions < coasts_plan.detail_instructions

    def test_huge_threshold_degenerates_to_coasts(self, small_trace,
                                                  test_sampling, coasts_plan):
        from dataclasses import replace

        sampler = MultiLevelSampler(
            replace(test_sampling, resample_threshold=10**9)
        )
        plan = sampler.sample(small_trace, coarse_plan=coasts_plan)
        assert plan.detail_instructions == coasts_plan.detail_instructions
        assert plan.n_leaves == coasts_plan.n_points

    def test_threshold_below_interval_rejected(self, test_sampling):
        from dataclasses import replace

        with pytest.raises(Exception):
            MultiLevelSampler(replace(test_sampling, resample_threshold=10))
