"""Tests for the command-line interface."""

import pytest

from repro.cli import EXIT_PARTIAL, EXPERIMENTS, build_parser, exit_code_for, main
from repro.errors import (
    ConfigError,
    FaultSpecError,
    HarnessError,
    ReproError,
)
from repro.harness.faults import FAULTS_ENV


class TestParser:
    def test_requires_subcommand(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "gzip"])
        assert args.benchmark == "gzip"
        assert args.config == "a"
        assert args.scale == 1.0

    def test_unknown_benchmark_rejected(self, capsys):
        # `run` accepts set expressions now, so unknown names surface as
        # a resolution error (exit 2), not an argparse choices failure.
        code = main(["run", "doom3"])
        err = capsys.readouterr().err
        assert code == 2
        assert "doom3" in err and "Traceback" not in err

    def test_experiment_names(self):
        for name in EXPERIMENTS:
            args = build_parser().parse_args(["experiment", name])
            assert args.name == name

    def test_scale_flag(self):
        args = build_parser().parse_args(["--scale", "0.1", "run", "mcf"])
        assert args.scale == 0.1

    def test_suite_jobs_and_quick(self):
        args = build_parser().parse_args(
            ["suite", "--quick", "--jobs", "4"]
        )
        assert args.jobs == 4
        assert args.quick
        args = build_parser().parse_args(["suite"])
        assert args.jobs == 1 and not args.quick

    def test_experiment_jobs_zero_means_auto(self):
        args = build_parser().parse_args(
            ["experiment", "fig3", "--jobs", "0"]
        )
        assert args.jobs == 0

    def test_verbose_counts(self):
        assert build_parser().parse_args(["run", "gzip"]).verbose == 0
        assert build_parser().parse_args(["-v", "run", "gzip"]).verbose == 1
        assert build_parser().parse_args(
            ["suite", "-vv"]
        ).verbose == 2

    def test_timing_flags(self):
        args = build_parser().parse_args(
            ["suite", "--timing", "--timing-json", "t.json"]
        )
        assert args.timing
        assert args.timing_json == "t.json"

    def test_fault_flags(self):
        args = build_parser().parse_args(
            ["suite", "--retries", "3", "--timeout", "5.5",
             "--fail-fast", "--resume"]
        )
        assert args.retries == 3
        assert args.timeout == 5.5
        assert args.fail_fast and args.resume
        args = build_parser().parse_args(["experiment", "fig3"])
        assert args.retries == 1
        assert args.timeout is None
        assert not args.fail_fast and not args.resume


class TestExitCodes:
    def test_error_class_mapping(self):
        assert exit_code_for(ConfigError("x")) == 2
        assert exit_code_for(HarnessError("x")) == 2
        assert exit_code_for(FaultSpecError("x")) == 2

        class OtherLibraryError(ReproError):
            pass

        assert exit_code_for(OtherLibraryError("x")) == 70

    def test_unknown_subcommand_exits_usage_error(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["frobnicate"])
        assert excinfo.value.code == 2
        assert "invalid choice" in capsys.readouterr().err

    def test_negative_jobs_exits_cleanly(self, capsys, tmp_path,
                                         monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        code = main(["suite", "--quick", "--jobs", "-1"])
        err = capsys.readouterr().err
        assert code == 2
        assert "error:" in err and "jobs" in err
        assert "Traceback" not in err

    def test_invalid_policy_exits_cleanly(self, capsys):
        code = main(["suite", "--quick", "--retries", "-3"])
        err = capsys.readouterr().err
        assert code == 2
        assert "error:" in err and "max_retries" in err
        assert "Traceback" not in err

    def test_bad_fault_spec_exits_cleanly(self, capsys, tmp_path,
                                          monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        monkeypatch.setenv(FAULTS_ENV, "explode:gzip")
        code = main(["--scale", "0.04", "run", "gzip"])
        err = capsys.readouterr().err
        assert code == 2
        assert "error:" in err and "explode:gzip" in err
        assert "Traceback" not in err

    def test_partial_suite_renders_table_and_exits_partial(
            self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        monkeypatch.setenv(FAULTS_ENV, "raise:lucas:baseline:*")
        code = main(["--scale", "0.04", "suite", "--quick",
                     "--retries", "0"])
        captured = capsys.readouterr()
        assert code == EXIT_PARTIAL
        # The completed rows still render; the failed one is explicit.
        assert "gzip" in captured.out and "mcf" in captured.out
        assert "FAILED(1/1)" in captured.out
        assert "InjectedFault in baseline" in captured.err
        assert "--resume" in captured.err


class TestExecution:
    def test_run_small_benchmark(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        code = main(["--scale", "0.1", "run", "gzip"])
        out = capsys.readouterr().out
        assert code == 0
        assert "baseline CPI" in out
        assert "multilevel" in out and "coasts" in out

    def test_quick_suite_parallel_with_timing(self, capsys, tmp_path,
                                              monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        code = main(["--scale", "0.08", "suite", "--quick",
                     "--jobs", "2", "--timing"])
        out = capsys.readouterr().out
        assert code == 0
        assert "suite summary" in out
        assert "jobs=2" in out
        assert "plan_construction" in out

    def test_fig1_experiment(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        code = main(["--scale", "0.1", "experiment", "fig1",
                     "--benchmark", "lucas"])
        out = capsys.readouterr().out
        assert code == 0
        assert "granularity" in out
        assert "coarse" in out
