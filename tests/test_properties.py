"""Property-based tests (hypothesis) for core invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import kmeans, normalize_rows, select_k
from repro.analysis.bic import bic_score
from repro.config import CacheConfig
from repro.sampling.points import SamplingPlan, SimulationPoint
from repro.uarch import (
    Cache,
    OccupancyCache,
    advance_loop_branch,
    exit_loop_branch,
    stationary_mispredict_rate,
)
from repro.uarch.occupancy import visit_hit_rate


class TestBranchProperties:
    @given(state=st.integers(0, 3), takens=st.integers(0, 1000))
    def test_loop_branch_counter_stays_in_range(self, state, takens):
        new_state, mispredicts = advance_loop_branch(state, takens)
        assert 0 <= new_state <= 3
        assert 0 <= mispredicts <= min(takens, 2)

    @given(state=st.integers(0, 3))
    def test_exit_keeps_counter_in_range(self, state):
        new_state, mispredict = exit_loop_branch(state)
        assert 0 <= new_state <= 3
        assert mispredict in (0, 1)

    @given(p=st.floats(0.0, 1.0))
    def test_stationary_rate_bounded(self, p):
        rate = stationary_mispredict_rate(p)
        assert 0.0 <= rate <= 0.5 + 1e-9

    @given(p=st.floats(0.0, 0.5))
    def test_stationary_rate_symmetric(self, p):
        assert stationary_mispredict_rate(p) == pytest.approx(
            stationary_mispredict_rate(1.0 - p)
        )


class TestCacheProperties:
    @given(lines=st.lists(st.integers(0, 500), min_size=1, max_size=200))
    @settings(max_examples=50)
    def test_hits_plus_misses_equals_accesses(self, lines):
        cache = Cache(CacheConfig("t", 1024, 2, 32, 1))
        for line in lines:
            cache.access(line)
        assert cache.hits + cache.misses == cache.accesses == len(lines)

    @given(lines=st.lists(st.integers(0, 500), min_size=1, max_size=200))
    @settings(max_examples=50)
    def test_occupancy_never_exceeds_capacity(self, lines):
        cache = Cache(CacheConfig("t", 256, 2, 32, 1))
        for line in lines:
            cache.access(line)
        assert cache.resident_lines() <= cache.capacity_lines

    @given(
        installs=st.lists(
            st.tuples(st.integers(0, 5), st.floats(0.0, 500.0)),
            min_size=1, max_size=30,
        )
    )
    @settings(max_examples=50)
    def test_occupancy_model_capacity_invariant(self, installs):
        cache = OccupancyCache(CacheConfig("t", 64 * 32, 1, 32, 1))
        for region, lines in installs:
            cache.install(region, lines)
            assert cache.occupancy <= cache.capacity + 1e-6
            assert all(
                cache.residency(r) >= 0 for r, _ in installs
            )

    @given(
        resident=st.floats(0, 1000),
        footprint=st.floats(1, 1000),
        touches=st.floats(0, 5000),
        capacity=st.floats(1, 2000),
    )
    @settings(max_examples=200)
    def test_visit_hit_rate_is_probability(self, resident, footprint,
                                           touches, capacity):
        rate = visit_hit_rate(resident, footprint, touches, capacity)
        assert 0.0 <= rate <= 1.0


class TestClusteringProperties:
    @given(
        n=st.integers(3, 40),
        k=st.integers(1, 6),
        seed=st.integers(0, 5),
    )
    @settings(max_examples=25, deadline=None)
    def test_kmeans_partitions_data(self, n, k, seed):
        rng = np.random.default_rng(seed)
        data = rng.random((n, 3))
        result = kmeans(data, k, seed=seed, n_seeds=1)
        assert len(result.labels) == n
        assert result.cluster_sizes().sum() == n
        assert result.inertia >= 0
        assert result.k <= min(k, n)

    @given(
        rows=st.integers(1, 20),
        cols=st.integers(1, 10),
        seed=st.integers(0, 100),
    )
    @settings(max_examples=50)
    def test_normalize_rows_unit_mass(self, rows, cols, seed):
        data = np.random.default_rng(seed).random((rows, cols))
        normalized = normalize_rows(data)
        assert np.allclose(normalized.sum(axis=1), 1.0)

    @given(
        scores=st.dictionaries(
            st.integers(1, 20), st.floats(-1e6, 1e6), min_size=1, max_size=10
        ),
        threshold=st.floats(0.01, 1.0),
    )
    @settings(max_examples=100)
    def test_select_k_returns_candidate(self, scores, threshold):
        chosen = select_k(scores, threshold=threshold)
        assert chosen in scores

    def test_bic_decreases_with_overfit_k(self):
        rng = np.random.default_rng(0)
        data = rng.normal(size=(60, 3))
        score_small = bic_score(data, kmeans(data, 1, seed=0))
        score_large = bic_score(data, kmeans(data, 20, seed=0))
        assert score_small > score_large


class TestKMeansInvariants:
    """Lloyd-iteration invariants over the backend-switchable kernels."""

    @given(
        n=st.integers(2, 50),
        d=st.integers(1, 8),
        k=st.integers(1, 8),
        seed=st.integers(0, 20),
    )
    @settings(max_examples=40, deadline=None)
    def test_labels_within_cluster_range(self, n, d, k, seed):
        data = np.random.default_rng(seed).random((n, d))
        result = kmeans(data, k, seed=seed, n_seeds=1)
        assert result.labels.min() >= 0
        assert result.labels.max() < result.k

    @given(
        n=st.integers(3, 60),
        d=st.integers(1, 6),
        k=st.integers(1, 6),
        seed=st.integers(0, 20),
    )
    @settings(max_examples=40, deadline=None)
    def test_inertia_monotone_non_increasing(self, n, d, k, seed):
        data = np.random.default_rng(seed).random((n, d))
        result = kmeans(data, k, seed=seed, n_seeds=1)
        history = result.inertia_history
        assert len(history) == result.n_iterations + 1
        assert history[-1] == result.inertia
        # Each assignment + update step can only lower the objective;
        # allow a whisker of slack for centroid-update rounding.
        for earlier, later in zip(history, history[1:]):
            assert later <= earlier * (1.0 + 1e-9) + 1e-12

    @given(
        n=st.integers(1, 60),
        k=st.integers(1, 10),
        seed=st.integers(0, 20),
    )
    @settings(max_examples=40, deadline=None)
    def test_cluster_sizes_partition_points(self, n, k, seed):
        data = np.random.default_rng(seed).random((n, 3))
        result = kmeans(data, k, seed=seed, n_seeds=1)
        sizes = result.cluster_sizes()
        assert sizes.sum() == n
        assert len(sizes) == result.k

    @given(
        n=st.integers(2, 30),
        distinct=st.integers(1, 3),
        k=st.integers(1, 8),
        seed=st.integers(0, 20),
    )
    @settings(max_examples=40, deadline=None)
    def test_degenerate_inputs_yield_finite_centroids(
            self, n, distinct, k, seed):
        # Fewer distinct points than clusters: k-means++ runs out of
        # positive-distance candidates and must still seed cleanly.
        rng = np.random.default_rng(seed)
        base = rng.random((distinct, 4))
        data = base[rng.integers(0, distinct, size=n)]
        result = kmeans(data, k, seed=seed, n_seeds=1)
        assert np.isfinite(result.centroids).all()
        assert np.isfinite(result.inertia)
        assert result.inertia >= 0.0

    def test_identical_points_zero_inertia(self):
        data = np.full((12, 5), 3.5)
        result = kmeans(data, 4, seed=0)
        assert result.inertia == 0.0
        assert not np.isnan(result.centroids).any()


class TestPlanProperties:
    @given(
        starts=st.lists(st.integers(0, 900), min_size=1, max_size=8,
                        unique=True),
        seed=st.integers(0, 10),
    )
    @settings(max_examples=50)
    def test_plan_accounting_invariants(self, starts, seed):
        rng = np.random.default_rng(seed)
        starts = sorted(starts)
        points = []
        raw = rng.random(len(starts)) + 0.05
        weights = raw / raw.sum()
        for i, s in enumerate(starts):
            points.append(
                SimulationPoint(
                    start=s * 100, end=s * 100 + 50,
                    weight=float(weights[i]), phase=i, interval_index=i,
                )
            )
        plan = SamplingPlan(
            method="prop", benchmark="b", points=tuple(points),
            total_instructions=100_000, n_clusters=len(points),
        )
        assert plan.detail_instructions == 50 * len(points)
        assert 0 <= plan.functional_fraction <= 1
        assert plan.functional_instructions + plan.detail_instructions == \
            plan.last_end
        assert 0 < plan.last_point_position <= 1
