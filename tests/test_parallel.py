"""Tests for parallel suite execution and the machinery backing it.

Covers four areas introduced together: (1) the process-parallel
``run_suite`` path must be byte-identical to the serial one, (2) the disk
cache must survive concurrent writers, (3) the vectorized BBV/timing hot
paths are pinned to numerics captured before the vectorization (the
rewrites claim bit-identity, so comparisons are exact), and (4) the
per-stage timing records that ride along with every run.
"""

import hashlib
import json
from concurrent.futures import ProcessPoolExecutor

import numpy as np
import pytest

from repro.config import CONFIG_A
from repro.detailed import TimingSimulator
from repro.errors import HarnessError
from repro.harness import (
    CACHE_SCHEMA_VERSION,
    ExperimentRunner,
    ResultCache,
    RunTiming,
    SuiteTiming,
    resolve_jobs,
)
from repro.harness.timing import STAGE_ORDER

from .conftest import TEST_SCALE

#: Benchmarks used for serial/parallel equivalence (quick subset).
SUITE_NAMES = ("gzip", "lucas", "mcf")


def _suite_payload(sampling, cache_dir, jobs):
    runner = ExperimentRunner(
        sampling=sampling,
        cache=ResultCache(directory=cache_dir),
        workload_scale=TEST_SCALE,
        jobs=jobs,
    )
    runs = runner.run_suite(CONFIG_A, names=SUITE_NAMES)
    payload = [json.dumps(run.to_dict(), sort_keys=True) for run in runs]
    return runner, payload


class TestParallelSuite:
    def test_parallel_byte_identical_to_serial(self, tmp_path,
                                               test_sampling):
        _, serial = _suite_payload(test_sampling,
                                   tmp_path / "serial", jobs=1)
        parallel_runner, parallel = _suite_payload(
            test_sampling, tmp_path / "parallel", jobs=2
        )
        assert parallel == serial
        # Results must come back in task order, not completion order.
        order = [json.loads(p)["benchmark"] for p in parallel]
        assert order == list(SUITE_NAMES)
        assert parallel_runner.timing.jobs == 2

    def test_worker_timing_merged_into_parent(self, tmp_path,
                                              test_sampling):
        runner, _ = _suite_payload(test_sampling, tmp_path, jobs=2)
        assert len(runner.timing.runs) == len(SUITE_NAMES)
        covered = {r.benchmark for r in runner.timing.runs}
        assert covered == set(SUITE_NAMES)
        for record in runner.timing.runs:
            assert set(record.stages) == set(STAGE_ORDER)
        assert runner.timing.cache_misses == len(SUITE_NAMES)
        assert runner.timing.cache_hits == 0

    def test_parallel_run_hits_shared_cache(self, tmp_path, test_sampling):
        _suite_payload(test_sampling, tmp_path, jobs=2)
        runner, second = _suite_payload(test_sampling, tmp_path,
                                        jobs=2)
        _, serial = _suite_payload(test_sampling,
                                   tmp_path / "fresh", jobs=1)
        assert second == serial
        assert runner.timing.cache_hits == len(SUITE_NAMES)

    def test_resolve_jobs(self):
        assert resolve_jobs(3) == 3
        assert resolve_jobs(None) >= 1
        assert resolve_jobs(0) == resolve_jobs(None)
        with pytest.raises(HarnessError):
            resolve_jobs(-1)

    def test_negative_jobs_rejected_at_construction(self):
        with pytest.raises(HarnessError):
            ExperimentRunner(jobs=-2)


def _hammer_cache(payload):
    """Worker body for the concurrency test (must be module-level)."""
    directory, worker_id, rounds, n_keys = payload
    cache = ResultCache(directory=directory)
    bad = 0
    for i in range(rounds):
        key = f"shared-{i % n_keys}"
        cache.put(key, {"worker": worker_id, "round": i})
        value = cache.get(key)
        # A concurrent writer may have replaced the entry, but a reader
        # must never see a torn or partial file.
        if value is not None and set(value) != {"worker", "round"}:
            bad += 1
    return bad


class TestCacheConcurrency:
    def test_concurrent_putters_never_tear(self, tmp_path):
        workers = 4
        with ProcessPoolExecutor(max_workers=workers) as pool:
            bad = list(pool.map(
                _hammer_cache,
                [(tmp_path, w, 40, 8) for w in range(workers)],
            ))
        assert bad == [0] * workers
        # Every surviving entry is whole, and no temp files are stranded.
        cache = ResultCache(directory=tmp_path)
        for i in range(8):
            value = cache.get(f"shared-{i}")
            assert value is not None
            assert set(value) == {"worker", "round"}
        assert list(tmp_path.glob("*.tmp")) == []

    def test_corrupt_entry_reads_as_miss_and_quarantines(self, tmp_path):
        cache = ResultCache(directory=tmp_path)
        cache.put("ok", {"x": 1})
        path = cache.path_for("ok")
        path.write_text("{ torn write")
        assert cache.get("ok") is None
        assert cache.misses == 1
        assert cache.corrupt == 1
        # Quarantined aside, so the recompute's entry is fresh, not the
        # same torn bytes forever.
        assert not path.exists()
        assert path.with_name(path.name + ".corrupt").exists()

    def test_stale_schema_version_quarantined(self, tmp_path):
        cache = ResultCache(directory=tmp_path)
        cache.put("k", {"x": 1})
        path = cache.path_for("k")
        wrapper = json.loads(path.read_text())
        wrapper["version"] = CACHE_SCHEMA_VERSION - 1
        path.write_text(json.dumps(wrapper))
        # Structurally whole but written under another schema generation:
        # a miss, and quarantined like a torn file.
        assert cache.get("k") is None
        assert cache.corrupt == 1
        assert path.with_name(path.name + ".corrupt").exists()
        cache.put("k", {"x": 1})
        assert cache.get("k") == {"x": 1}

    def test_key_collision_quarantined(self, tmp_path):
        cache = ResultCache(directory=tmp_path)
        cache.put("k", {"x": 1})
        path = cache.path_for("k")
        wrapper = json.loads(path.read_text())
        wrapper["key"] = "something else"
        path.write_text(json.dumps(wrapper))
        assert cache.get("k") is None
        assert cache.corrupt == 1

    def test_clear_removes_stranded_tmp_and_corrupt_files(self, tmp_path):
        cache = ResultCache(directory=tmp_path)
        cache.put("a", 1)
        (tmp_path / "stranded.tmp").write_text("half a payload")
        cache.put("b", 2)
        cache.path_for("b").write_text("{ torn")
        assert cache.get("b") is None  # quarantines to *.corrupt
        cache.clear()
        assert list(tmp_path.glob("*.json")) == []
        assert list(tmp_path.glob("*.tmp")) == []
        assert list(tmp_path.glob("*.corrupt")) == []

    def test_hit_miss_counters(self, tmp_path):
        cache = ResultCache(directory=tmp_path)
        assert cache.get("absent") is None
        cache.put("present", [1, 2])
        assert cache.get("present") == [1, 2]
        assert (cache.hits, cache.misses) == (1, 1)


def _digest(array):
    return hashlib.sha256(np.ascontiguousarray(array).tobytes()).hexdigest()


class TestVectorizedGoldens:
    """Pre-vectorization numerics, captured on the scalar implementations.

    The vectorized BBV accumulation preserves the scalar per-cell float
    addition order (np.bincount adds sequentially in entry order), and the
    batched timing loop leaves all state-carrying accesses in original
    order — so every comparison here is exact, not approximate.  Values
    are gzip at scale 0.04 under config A.
    """

    GOLDEN_TOTAL = 296490
    GOLDEN_BLOCK_COUNTS_SHA = (
        "78e9e112cabdaef57bc905b01d29de6cca1e1af54c52bcd3d8a315512b010393"
    )
    GOLDEN_FIXED_BBV_SHA = (
        "d035b5849049579c3b8a016efdd05c6fd06a3ffb64a4db877d911e6e21c66ac7"
    )
    GOLDEN_SUB_BBV_SHA = (
        "e939ec4c7940b4084b12babe87275cb7ccd77a2fc0c2e4ea9a0e1fdec758a753"
    )

    def test_run_block_counts(self, small_functional):
        result = small_functional.run()
        assert result.total_instructions == self.GOLDEN_TOTAL
        assert _digest(result.block_counts) == self.GOLDEN_BLOCK_COUNTS_SHA

    def test_fixed_interval_bbv(self, small_fine_profile):
        assert _digest(small_fine_profile.bbv) == self.GOLDEN_FIXED_BBV_SHA
        assert float(small_fine_profile.bbv.sum()) == float(
            self.GOLDEN_TOTAL
        )
        assert small_fine_profile.bbv.sum(axis=1)[:10].tolist() == \
            [1000.0] * 10

    def test_range_restricted_bbv(self, small_functional, small_trace):
        start = small_trace.total_instructions // 4
        profile = small_functional.profile_fixed_intervals(
            1000, start=start, end=start + 4000
        )
        assert _digest(profile.bbv) == self.GOLDEN_SUB_BBV_SHA
        assert float(profile.bbv.sum()) == 4000.0

    def test_coarse_interval_bbv(self, small_functional):
        coarse = small_functional.profile_coarse_intervals(4)
        assert float(coarse.bbv.sum()) == 287832.0

    def test_full_timing_simulation(self, small_trace):
        full = TimingSimulator(small_trace, CONFIG_A).simulate_full()
        assert full.cycles == 175651.18228890124
        assert full.instructions == 296490
        assert full.l1d_misses == 40905.5920916441
        assert full.l1d_accesses == 94634
        assert full.l1i_misses == 87
        assert full.l1i_accesses == 47774
        assert full.l2_misses == 4116.22485732644
        assert full.l2_accesses == 40992.5920916441
        assert full.branches == 12374
        assert full.mispredicts == 964.0467844426604

    def test_warmed_point_simulation(self, small_trace):
        sim = TimingSimulator(small_trace, CONFIG_A)
        mid = small_trace.total_instructions // 2
        result = sim.simulate_point(mid, mid + 1500, warmup=2000)
        assert result.cycles == 3144.5292231110698
        assert result.instructions == 1554
        assert result.l1d_misses == 154.41697108197846
        assert result.mispredicts == 4.536585365853658


class TestTimingRecords:
    def test_stage_context_accumulates(self):
        timing = SuiteTiming()
        record = timing.start_run("gzip", "config_a")
        with timing.stage(record, "trace_build"):
            pass
        with timing.stage(record, "trace_build"):
            pass
        assert record.stages["trace_build"] >= 0.0
        assert timing.runs == [record]

    def test_stage_noop_without_record(self):
        timing = SuiteTiming()
        with timing.stage(None, "profiling"):
            pass
        assert timing.runs == []

    def test_roundtrip(self):
        timing = SuiteTiming()
        timing.jobs = 3
        record = timing.start_run("mcf", "config_b")
        record.add_stage("baseline", 1.25)
        record.cache_hit = True
        record.total_seconds = 1.5
        clone = SuiteTiming.from_dict(timing.to_dict())
        assert clone.jobs == 3
        assert clone.cache_hits == 1
        assert clone.runs[0].stages == {"baseline": 1.25}
        assert clone.runs[0].to_dict() == record.to_dict()

    def test_merge_combines_runs(self):
        left, right = SuiteTiming(), SuiteTiming()
        left.start_run("gzip", "config_a").add_stage("baseline", 1.0)
        right.start_run("mcf", "config_a").add_stage("baseline", 2.0)
        right.runs[0].cache_hit = True
        left.merge(right)
        assert [r.benchmark for r in left.runs] == ["gzip", "mcf"]
        assert left.stage_totals()["baseline"] == 3.0
        assert (left.cache_hits, left.cache_misses) == (1, 1)

    def test_report_lists_stages(self):
        timing = SuiteTiming()
        record = timing.start_run("gzip", "config_a")
        for stage in STAGE_ORDER:
            record.add_stage(stage, 0.5)
        report = timing.format_report()
        for stage in STAGE_ORDER:
            assert stage in report

    def test_run_benchmark_records_all_stages(self, tmp_path,
                                              test_sampling):
        runner = ExperimentRunner(
            sampling=test_sampling,
            cache=ResultCache(directory=tmp_path),
            workload_scale=TEST_SCALE,
        )
        runner.run_benchmark("gzip", CONFIG_A)
        (record,) = runner.timing.runs
        assert set(record.stages) == set(STAGE_ORDER)
        assert not record.cache_hit
        runner.run_benchmark("gzip", CONFIG_A)
        assert isinstance(RunTiming.from_dict(record.to_dict()), RunTiming)
