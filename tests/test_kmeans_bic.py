"""Tests for k-means clustering and BIC model selection."""

import math

import numpy as np
import pytest

from repro.analysis import bic_score, cluster_with_bic, kmeans, select_k
from repro.errors import ClusteringError


def blobs(centers, n_per, sigma=0.05, seed=0, dims=2):
    rng = np.random.default_rng(seed)
    data, labels = [], []
    for i, center in enumerate(centers):
        data.append(rng.normal(center, sigma, size=(n_per, dims)))
        labels.extend([i] * n_per)
    return np.vstack(data), np.array(labels)


class TestKMeans:
    def test_recovers_well_separated_clusters(self):
        data, truth = blobs([0.0, 5.0, 10.0], 40)
        result = kmeans(data, 3, seed=0)
        # same-partition check up to label permutation
        for cluster in range(3):
            members = result.labels[truth == cluster]
            assert len(set(members.tolist())) == 1

    def test_inertia_decreases_with_k(self):
        data, _ = blobs([0.0, 5.0], 50)
        inertia = [kmeans(data, k, seed=1).inertia for k in (1, 2, 4)]
        assert inertia[0] > inertia[1] >= inertia[2]

    def test_k_clamped_to_n(self):
        data = np.array([[0.0, 0.0], [1.0, 1.0]])
        result = kmeans(data, 10)
        assert result.k == 2

    def test_deterministic_for_seed(self):
        data, _ = blobs([0.0, 3.0], 30)
        a = kmeans(data, 2, seed=5)
        b = kmeans(data, 2, seed=5)
        assert np.array_equal(a.labels, b.labels)

    def test_cluster_sizes_sum_to_n(self):
        data, _ = blobs([0.0, 2.0, 8.0], 21)
        result = kmeans(data, 3, seed=2)
        assert result.cluster_sizes().sum() == len(data)

    def test_rejects_empty_data(self):
        with pytest.raises(ClusteringError):
            kmeans(np.zeros((0, 3)), 2)

    def test_rejects_bad_k(self):
        with pytest.raises(ClusteringError):
            kmeans(np.zeros((5, 2)), 0)


class TestBic:
    def test_bic_prefers_true_k(self):
        data, _ = blobs([0.0, 6.0, 12.0], 60, seed=4)
        scores = {}
        for k in range(1, 7):
            scores[k] = bic_score(data, kmeans(data, k, seed=0))
        best = max(scores, key=scores.get)
        assert best == 3

    def test_select_k_prefers_small_k_at_threshold(self):
        scores = {1: 0.0, 2: 89.0, 3: 100.0, 4: 100.5}
        # 90% of range = 90; smallest k above: 3
        assert select_k(scores, threshold=0.9) == 3
        # low threshold picks 2
        assert select_k(scores, threshold=0.5) == 2

    def test_select_k_all_infinite(self):
        assert select_k({1: -math.inf, 2: -math.inf}) == 1

    def test_cluster_with_bic_finds_structure(self):
        data, _ = blobs([0.0, 7.0], 50, seed=9)
        result, scores = cluster_with_bic(data, kmax=6, seed=0, n_seeds=2)
        assert result.k == 2
        assert set(scores) == {1, 2, 3, 4, 5, 6}

    def test_cluster_with_bic_single_blob(self):
        data, _ = blobs([1.0], 80, seed=3)
        result, _ = cluster_with_bic(data, kmax=5, seed=0, n_seeds=2)
        assert result.k <= 2

    def test_kmax_respected(self):
        data, _ = blobs([0.0, 3.0, 6.0, 9.0, 12.0, 15.0], 20, seed=1)
        result, scores = cluster_with_bic(data, kmax=3, seed=0, n_seeds=2)
        assert result.k <= 3
        assert max(scores) == 3

    def test_custom_candidate_list(self):
        data, _ = blobs([0.0, 5.0], 30)
        _, scores = cluster_with_bic(data, kmax=10, ks=[1, 2, 5])
        assert set(scores) == {1, 2, 5}
