"""Tests for the cross-run history store and ``repro obs diff``."""

import json

import pytest

from repro.cli import EXIT_PARTIAL, main
from repro.errors import HarnessError, ObservabilityError
from repro.obs.history import (
    COMPARABLE_KEYS,
    HistoryRecord,
    RunHistory,
    diff_records,
    format_diff,
    format_history,
)
from repro.obs.manifest import RunManifest


def make_record(cpi_dev=0.01, config_digest="cfg0", scale=0.04,
                speedups=None, kind="suite", created="2026-01-01T00:00:00"):
    return HistoryRecord(
        kind=kind,
        created=created,
        config_name="a",
        config_digest=config_digest,
        sampling_digest="smp0",
        workload_scale=scale,
        methods=["simpoint", "coasts"],
        benchmarks=["gcc"],
        accuracy={
            "gcc": {
                "simpoint": {
                    "cpi_dev": cpi_dev,
                    "l1_dev": 0.001,
                    "l2_dev": 0.002,
                    "baseline_cpi": 1.5,
                    "estimate_cpi": 1.5 * (1 + cpi_dev),
                },
            },
        },
        counters={"repro_simulated_instructions_total": 1000.0},
        speedups=dict(speedups or {}),
    ).seal()


class TestHistoryRecord:
    def test_seal_is_content_derived_and_idempotent(self):
        a, b = make_record(), make_record()
        assert a.run_id and a.run_id == b.run_id
        assert len(a.run_id) == 12
        sealed_again = a.seal()
        assert sealed_again.run_id == a.run_id
        assert make_record(cpi_dev=0.02).run_id != a.run_id

    def test_dict_round_trip(self):
        record = make_record(speedups={"kmeans": 12.0})
        rebuilt = HistoryRecord.from_dict(
            json.loads(json.dumps(record.to_dict()))
        )
        assert rebuilt.to_dict() == record.to_dict()

    def test_from_dict_ignores_unknown_keys(self):
        payload = make_record().to_dict()
        payload["added_in_v9"] = {"x": 1}
        rebuilt = HistoryRecord.from_dict(payload)
        assert rebuilt.run_id == payload["run_id"]

    def test_comparable_key_covers_declared_keys(self):
        assert set(make_record().comparable_key()) == set(COMPARABLE_KEYS)


class TestRunHistoryStore:
    def test_append_and_load(self, tmp_path):
        store = RunHistory(tmp_path / "hist")
        first = store.append(make_record(cpi_dev=0.01))
        second = store.append(make_record(cpi_dev=0.02))
        loaded = store.load()
        assert [r.run_id for r in loaded] == [first.run_id, second.run_id]

    def test_load_missing_store_is_empty(self, tmp_path):
        assert RunHistory(tmp_path / "nowhere").load() == []

    def test_resolve_forms(self, tmp_path):
        store = RunHistory(tmp_path)
        records = [store.append(make_record(cpi_dev=0.01 * i))
                   for i in range(1, 4)]
        assert store.resolve("last").run_id == records[-1].run_id
        assert store.resolve("prev").run_id == records[-2].run_id
        assert store.resolve("~0").run_id == records[-1].run_id
        assert store.resolve("~2").run_id == records[0].run_id
        prefix = records[0].run_id[:6]
        assert store.resolve(prefix).run_id == records[0].run_id

    def test_resolve_errors(self, tmp_path):
        store = RunHistory(tmp_path)
        with pytest.raises(HarnessError, match="history is empty"):
            store.resolve("last")
        store.append(make_record())
        with pytest.raises(HarnessError, match="'prev' needs two"):
            store.resolve("prev")
        with pytest.raises(HarnessError, match="out of range"):
            store.resolve("~5")
        with pytest.raises(HarnessError, match="bad history reference"):
            store.resolve("~x")
        with pytest.raises(HarnessError, match="unknown history reference"):
            store.resolve("zzzzzz")

    def test_resolve_ambiguous_prefix(self, tmp_path):
        store = RunHistory(tmp_path)
        store.append(make_record())
        store.append(make_record())  # identical content -> identical id
        with pytest.raises(HarnessError, match="ambiguous"):
            store.resolve(store.load()[0].run_id[:4])

    def test_corrupt_line_is_data_error(self, tmp_path):
        store = RunHistory(tmp_path)
        store.append(make_record())
        with open(store.path, "a") as handle:
            handle.write("{not json\n")
        with pytest.raises(ObservabilityError, match=r"history\.jsonl:2"):
            store.load()

    def test_non_object_line_is_data_error(self, tmp_path):
        store = RunHistory(tmp_path)
        store.path.parent.mkdir(parents=True, exist_ok=True)
        store.path.write_text("[1, 2]\n")
        with pytest.raises(ObservabilityError, match="expected an object"):
            store.load()


class TestDiff:
    def test_identical_records_pass(self):
        diff = diff_records(make_record(), make_record())
        assert diff.verdict == "PASS"
        assert diff.regressed == []
        assert diff.notes == []
        assert any(e.verdict == "PASS" for e in diff.entries)

    def test_grown_deviation_regresses_and_names_the_metric(self):
        diff = diff_records(make_record(cpi_dev=0.01),
                            make_record(cpi_dev=0.05))
        assert diff.verdict == "REGRESSED"
        names = [e.name for e in diff.regressed]
        assert "gcc/simpoint/cpi_dev" in names
        rendered = format_diff(diff)
        assert "REGRESSED" in rendered
        assert "gcc/simpoint/cpi_dev" in rendered

    def test_shrunk_deviation_improves(self):
        diff = diff_records(make_record(cpi_dev=0.05),
                            make_record(cpi_dev=0.01))
        assert diff.verdict == "PASS"
        assert any(e.verdict == "IMPROVED" for e in diff.entries)

    def test_threshold_tolerates_small_drift(self):
        diff = diff_records(make_record(cpi_dev=0.0100),
                            make_record(cpi_dev=0.0104),
                            threshold=1e-3)
        assert diff.verdict == "PASS"

    def test_provenance_mismatch_is_a_note_not_a_failure(self):
        diff = diff_records(make_record(config_digest="cfg0"),
                            make_record(config_digest="cfg1"))
        assert diff.verdict == "PASS"
        assert any("config_digest" in note for note in diff.notes)
        assert "note:" in format_diff(diff)

    def test_missing_benchmark_is_a_note(self):
        b = make_record()
        b.accuracy["mcf"] = {"simpoint": {"cpi_dev": 0.0}}
        b.run_id = ""
        diff = diff_records(make_record(), b.seal())
        assert any("mcf" in note and "first" in note for note in diff.notes)

    def test_speedup_drop_regresses(self):
        diff = diff_records(make_record(speedups={"kmeans": 10.0}),
                            make_record(speedups={"kmeans": 8.0}))
        assert [e.name for e in diff.regressed] == ["speedup:kmeans"]
        # within the 10% band: fine
        diff = diff_records(make_record(speedups={"kmeans": 10.0}),
                            make_record(speedups={"kmeans": 9.5}))
        assert diff.verdict == "PASS"

    def test_counters_are_informational(self):
        a = make_record()
        b = make_record()
        b.counters["repro_simulated_instructions_total"] = 9999.0
        b.run_id = ""
        diff = diff_records(a, b.seal())
        assert diff.verdict == "PASS"
        entry = next(e for e in diff.entries
                     if e.name.startswith("counter:"))
        assert entry.verdict == "INFO"

    def test_format_diff_verbose_shows_pass_rows(self):
        diff = diff_records(make_record(), make_record())
        quiet = format_diff(diff)
        loud = format_diff(diff, verbose=True)
        assert "gcc/simpoint/cpi_dev" not in quiet
        assert "gcc/simpoint/cpi_dev" in loud
        assert quiet.splitlines()[-1].startswith("verdict: PASS")


class TestBuilders:
    @staticmethod
    def _manifest(**overrides):
        payload = dict(
            created="2026-01-01T00:00:00",
            repro_version="0.5",
            python_version="3.11.0",
            numpy_version="2.0.0",
            platform="linux-test",
            config_name="a",
            config_digest="cfg0",
            sampling_digest="smp0",
            workload_scale=0.04,
            methods=["simpoint", "coasts"],
            benchmarks=["gzip"],
        )
        payload.update(overrides)
        return RunManifest(**payload)

    def test_record_from_manifest_carries_provenance(self):
        from repro.obs.history import record_from_manifest

        record = record_from_manifest(self._manifest(), kind="run")
        assert record.run_id
        assert record.kind == "run"
        assert record.config_name == "a"
        assert record.workload_scale == 0.04
        assert record.benchmarks == ["gzip"]
        assert record.host.get("python_version") == "3.11.0"

    def test_record_from_manifest_keeps_only_counters(self):
        from repro.obs.history import record_from_manifest
        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry()
        registry.counter("repro_runs_total").inc(3)
        registry.gauge("repro_diag_total_error", benchmark="g",
                       method="m", metric="cpi").set(0.5)
        registry.histogram("repro_seconds", buckets=(1.0,)).observe(0.5)
        record = record_from_manifest(self._manifest(), registry=registry)
        assert record.counters == {"repro_runs_total": 3.0}


class TestFormatHistory:
    def test_empty(self):
        assert format_history([]) == "history is empty"

    def test_listing_and_limit(self):
        records = [make_record(cpi_dev=0.01 * i, created=f"2026-01-0{i}")
                   for i in range(1, 4)]
        text = format_history(records)
        for record in records:
            assert record.run_id in text
        limited = format_history(records, limit=2)
        assert records[0].run_id not in limited
        assert "1 older record(s) not shown" in limited


class TestCli:
    def _run_twice(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        for _ in range(2):
            assert main(["--scale", "0.04", "run", "gzip"]) == 0

    def test_identical_seeded_runs_diff_clean(self, capsys, tmp_path,
                                              monkeypatch):
        """The CI no-regression smoke: same config twice -> PASS, exit 0."""
        self._run_twice(tmp_path, monkeypatch)
        code = main(["obs", "diff", "prev", "last"])
        out = capsys.readouterr().out
        assert code == 0
        assert "verdict: PASS" in out

    def test_injected_regression_fails_and_names_metric(
            self, capsys, tmp_path, monkeypatch):
        self._run_twice(tmp_path, monkeypatch)
        store = RunHistory()
        worse = store.load()[-1]
        for values in worse.accuracy["gzip"].values():
            values["cpi_dev"] += 0.5
        worse.run_id = ""
        store.append(worse)
        code = main(["obs", "diff", "~2", "last"])
        captured = capsys.readouterr()
        assert code == EXIT_PARTIAL
        assert "REGRESSED" in captured.out
        assert "gzip/" in captured.out and "cpi_dev" in captured.out
        assert "regressed" in captured.err

    def test_history_lists_runs(self, capsys, tmp_path, monkeypatch):
        self._run_twice(tmp_path, monkeypatch)
        code = main(["obs", "history"])
        out = capsys.readouterr().out
        assert code == 0
        assert "run_id" in out
        assert "gzip" in out

    def test_history_empty_store_is_fine(self, capsys):
        code = main(["obs", "history"])
        assert code == 0
        assert "history is empty" in capsys.readouterr().out

    def test_diff_empty_store_is_usage_error(self, capsys):
        code = main(["obs", "diff", "prev", "last"])
        err = capsys.readouterr().err
        assert code == 2
        assert "history is empty" in err

    def test_corrupt_history_is_data_error(self, capsys, tmp_path,
                                           monkeypatch):
        store = RunHistory()
        store.append(make_record())
        with open(store.path, "a") as handle:
            handle.write("{broken\n")
        code = main(["obs", "history"])
        err = capsys.readouterr().err
        assert code == 1
        assert "corrupt history record" in err

    def test_no_history_flag_suppresses_append(self, capsys, tmp_path,
                                               monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        assert main(["--scale", "0.04", "run", "gzip",
                     "--no-history"]) == 0
        capsys.readouterr()
        assert RunHistory().load() == []

    def test_history_dir_flag_overrides_env(self, capsys, tmp_path,
                                            monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        elsewhere = tmp_path / "elsewhere"
        assert main(["--scale", "0.04", "run", "gzip",
                     "--history-dir", str(elsewhere)]) == 0
        capsys.readouterr()
        assert RunHistory().load() == []  # default store untouched
        records = RunHistory(elsewhere).load()
        assert len(records) == 1
        assert records[0].benchmarks == ["gzip"]
