"""Tests for the functional simulator and its profilers."""

import numpy as np
import pytest

from repro.engine import FunctionalSimulator
from repro.errors import TraceError


class TestRun:
    def test_counts_match_trace(self, small_functional, small_trace):
        result = small_functional.run()
        assert result.total_instructions == small_trace.total_instructions
        assert result.block_counts.sum() > 0
        manual = (result.block_counts *
                  small_trace.program.block_sizes).sum()
        assert manual == result.total_instructions


class TestFixedIntervalProfile:
    def test_bbv_mass_equals_instructions(self, small_fine_profile,
                                          small_trace):
        assert small_fine_profile.bbv.sum() == pytest.approx(
            small_trace.total_instructions
        )

    def test_per_interval_mass_matches_instruction_counts(
        self, small_fine_profile
    ):
        per_interval = small_fine_profile.bbv.sum(axis=1)
        assert np.allclose(per_interval, small_fine_profile.instructions)

    def test_interval_grid(self, small_fine_profile, small_trace):
        profile = small_fine_profile
        assert profile.starts[0] == 0
        assert np.all(np.diff(profile.starts) == profile.interval_size)
        assert profile.end_of(profile.n_intervals - 1) == \
            small_trace.total_instructions

    def test_range_restricted_profile(self, small_functional, small_trace):
        total = small_trace.total_instructions
        start, end = total // 4, total // 4 + 4000
        profile = small_functional.profile_fixed_intervals(
            1000, start=start, end=end
        )
        assert profile.n_intervals == 4
        assert profile.starts[0] == start
        assert profile.bbv.sum() == pytest.approx(end - start)

    def test_bad_ranges_rejected(self, small_functional, small_trace):
        with pytest.raises(TraceError):
            small_functional.profile_fixed_intervals(0)
        with pytest.raises(TraceError):
            small_functional.profile_fixed_intervals(
                1000, start=10, end=10
            )

    def test_different_intervals_have_different_bbvs(self, small_fine_profile):
        bbv = small_fine_profile.bbv
        # phase behaviour: at least some intervals differ substantially
        normalized = bbv / np.maximum(bbv.sum(axis=1, keepdims=True), 1)
        spread = np.abs(normalized[1:] - normalized[:-1]).sum(axis=1)
        assert spread.max() > 0.1


class TestCoarseIntervalProfile:
    def test_instances_align_with_outer_iterations(self, small_functional,
                                                   small_trace):
        profile = small_functional.profile_coarse_intervals(4)
        assert profile.n_instances == small_trace.spec.n_outer_iterations
        assert profile.total_instructions == \
            small_trace.total_instructions - small_trace.prologue_end

    def test_segment_bbvs_sum_to_instance_bbv(self, small_functional):
        profile = small_functional.profile_coarse_intervals(4)
        combined = profile.segment_bbvs.sum(axis=1)
        assert np.allclose(combined, profile.bbv, rtol=1e-9, atol=1e-6)

    def test_custom_bounds(self, small_functional, small_trace):
        bounds = np.array(
            [[0, 3000], [3000, 9000]], dtype=np.int64
        )
        profile = small_functional.profile_coarse_intervals(2, bounds=bounds)
        assert profile.n_instances == 2
        assert profile.instructions.tolist() == [3000, 6000]
        assert profile.bbv[0].sum() == pytest.approx(3000)

    def test_same_regime_instances_similar_bbvs(self, small_functional,
                                                small_trace):
        """Coarse BBVs of iterations of the same regime nearly coincide."""
        profile = small_functional.profile_coarse_intervals(4)
        schedule = small_trace.spec.schedule
        n_regimes = len(small_trace.spec.regimes)
        same = [i for i, r in enumerate(schedule) if r == schedule[0]]
        normalized = profile.bbv / profile.bbv.sum(axis=1, keepdims=True)
        if len(same) >= 2:
            delta_same = np.abs(normalized[same[0]] - normalized[same[1]]).sum()
            other = next(i for i, r in enumerate(schedule) if r != schedule[0])
            delta_diff = np.abs(normalized[same[0]] - normalized[other]).sum()
            assert delta_same < delta_diff


class TestStructureProfiles:
    def test_outer_loop_dominates_coverage(self, small_functional,
                                           small_trace):
        profiles = small_functional.profile_structures()
        outer = profiles[small_trace.workload.outer_loop_id]
        assert outer.coverage > 0.9
        assert outer.instances == small_trace.spec.n_outer_iterations

    def test_init_loop_below_coverage_floor(self, small_functional,
                                            small_trace):
        profiles = small_functional.profile_structures()
        init = profiles[small_trace.workload.init_loop_id]
        assert init.coverage < 0.01

    def test_inner_loops_counted(self, small_functional, small_trace):
        profiles = small_functional.profile_structures()
        inner_ids = [
            inner.loop_id
            for layout in small_trace.workload.regime_layouts
            for inner in layout.loops
        ]
        visited = [profiles[i] for i in inner_ids if profiles[i].instances]
        assert visited, "no inner loop executed"
        for profile in visited:
            assert profile.instructions > 0
