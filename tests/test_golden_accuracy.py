"""Golden accuracy-regression pins for the two-level sampling pipeline.

The paper's claim is speed at *preserved accuracy*; ``repro bench``
guards the speed half, this module guards the accuracy half.  The
CPI/L1/L2 deviations of the COASTS and multi-level plans against the
detailed baseline are pinned to the values the pipeline produced when
the vectorized kernels landed.  The pipeline is deterministic (seeded
clustering, analytic simulators), so these match to near machine
precision on any host; a drift means a numerics change in the kernels,
the samplers, or the detailed model — which must be deliberate.

To re-pin after an intentional numerics change, print the run's
deviations (see the fixture below) and update GOLDEN.
"""

import pytest

from repro.config import CONFIG_A, SamplingConfig
from repro.harness.cache import ResultCache
from repro.harness.runner import ExperimentRunner

#: Deviations of each method vs the detailed baseline (gzip @ scale
#: 0.04, config A): cpi is relative, the hit rates are absolute.
GOLDEN = {
    "coasts": {
        "cpi": 0.08177979261734693,
        "l1_hit_rate": 0.027370843634136555,
        "l2_hit_rate": 0.08608678621429844,
    },
    "multilevel": {
        "cpi": 0.1136191097512963,
        "l1_hit_rate": 0.04601673017367158,
        "l2_hit_rate": 0.08951615241460731,
    },
}

GOLDEN_BASELINE_CPI = 0.592435435559045

#: Relative tolerance: tight enough to catch any algorithmic change,
#: loose enough for libm/platform rounding differences.
RTOL = 1e-9


@pytest.fixture(scope="module")
def golden_run():
    sampling = SamplingConfig(
        fine_interval_size=1000,
        fine_kmax=10,
        coarse_kmax=3,
        resample_threshold=3000,
        kmeans_seeds=2,
        warmup_instructions=2000,
    )
    runner = ExperimentRunner(
        sampling=sampling,
        cache=ResultCache(enabled=False),
        workload_scale=0.04,
        methods=("coasts", "multilevel"),
    )
    return runner.run_benchmark("gzip", CONFIG_A)


class TestGoldenAccuracy:
    def test_baseline_cpi_pinned(self, golden_run):
        assert golden_run.baseline.cpi == pytest.approx(
            GOLDEN_BASELINE_CPI, rel=RTOL
        )

    @pytest.mark.parametrize("method", sorted(GOLDEN))
    def test_method_deviations_pinned(self, golden_run, method):
        deviation = golden_run.methods[method].deviation
        expected = GOLDEN[method]
        assert deviation.cpi == pytest.approx(expected["cpi"], rel=RTOL)
        assert deviation.l1_hit_rate == pytest.approx(
            expected["l1_hit_rate"], rel=RTOL
        )
        assert deviation.l2_hit_rate == pytest.approx(
            expected["l2_hit_rate"], rel=RTOL
        )

    @pytest.mark.parametrize("method", sorted(GOLDEN))
    def test_deviations_within_paper_regime(self, golden_run, method):
        # Sanity bound independent of the exact pins: sampled estimates
        # must stay in the paper's small-deviation regime, nowhere near
        # a broken estimate.
        deviation = golden_run.methods[method].deviation
        assert deviation.cpi < 0.20
        assert deviation.l1_hit_rate < 0.10
        assert deviation.l2_hit_rate < 0.15
