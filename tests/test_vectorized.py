"""Differential tests: vectorized kernels against the scalar reference.

The contract is **bit-identity**, not approximate equality: every
assertion here uses ``np.array_equal`` / ``==`` on floats.  The
vectorized kernels are built exclusively from numpy operations whose
per-element rounding matches the scalar loops (see
:mod:`repro.analysis.backend`), so any drift is a real kernel bug, not
tolerable noise.
"""

import numpy as np
import pytest

from repro.analysis import (
    BACKEND_ENV,
    BACKENDS,
    assign_points,
    bic_score,
    cluster_with_bic,
    concat_signatures,
    earliest_member,
    get_backend,
    kmeans,
    nearest_to_centroid,
    normalize_rows,
    project_bbvs,
    resolve_backend,
    set_backend,
    squared_distances,
    use_backend,
)
from repro.analysis import backend as backend_mod
from repro.config import SamplingConfig
from repro.errors import ClusteringError
from repro.sampling.coasts import Coasts
from repro.sampling.multilevel import MultiLevelSampler

#: (n points, dims, k) shapes covering the awkward corners: k > n,
#: a single point, a single cluster, and production-like sizes.
SHAPES = [
    (30, 5, 4),
    (100, 15, 8),
    (3, 2, 7),    # more clusters requested than points
    (1, 3, 1),    # single point
    (50, 4, 1),   # single cluster
]

SEEDS = [0, 1, 2]


def _dataset(n, d, seed):
    return np.random.default_rng(seed).random((n, d))


def _dataset_with_duplicates(n, d, seed):
    """Half the rows duplicated — exercises zero-distance seeding."""
    rng = np.random.default_rng(seed)
    base = rng.random((max(1, n // 2), d))
    data = np.concatenate([base, base])[:n]
    return data


class TestDistanceKernels:
    @pytest.mark.parametrize("n,d,k", SHAPES)
    @pytest.mark.parametrize("seed", SEEDS)
    def test_squared_distances_bit_identical(self, n, d, k, seed):
        data = _dataset(n, d, seed)
        centers = _dataset(k, d, seed + 100)
        fast = squared_distances(data, centers, backend="vectorized")
        slow = squared_distances(data, centers, backend="scalar")
        assert np.array_equal(fast, slow)

    @pytest.mark.parametrize("n,d,k", SHAPES)
    @pytest.mark.parametrize("seed", SEEDS)
    def test_assign_points_bit_identical(self, n, d, k, seed):
        data = _dataset(n, d, seed)
        centers = _dataset(k, d, seed + 100)
        fast_labels, fast_best = assign_points(data, centers, backend="vectorized")
        slow_labels, slow_best = assign_points(data, centers, backend="scalar")
        assert np.array_equal(fast_labels, slow_labels)
        assert np.array_equal(fast_best, slow_best)

    def test_assign_points_tie_break_matches_argmin(self):
        # Two identical centers: both backends must pick the first.
        data = np.array([[0.5, 0.5], [1.0, 0.0]])
        centers = np.array([[0.5, 0.5], [0.5, 0.5]])
        for backend in BACKENDS:
            labels, _ = assign_points(data, centers, backend=backend)
            assert np.array_equal(labels, [0, 0])

    @pytest.mark.parametrize("seed", SEEDS)
    def test_nearest_to_centroid_bit_identical(self, seed):
        data = _dataset(40, 6, seed)
        centroids = _dataset(5, 6, seed + 7)
        # Labels leave cluster 3 empty so the -1 branch is exercised.
        labels = np.random.default_rng(seed).integers(0, 3, size=40)
        fast = nearest_to_centroid(data, labels, centroids, backend="vectorized")
        slow = nearest_to_centroid(data, labels, centroids, backend="scalar")
        assert np.array_equal(fast, slow)
        assert fast[3] == -1 and fast[4] == -1

    @pytest.mark.parametrize("seed", SEEDS)
    def test_earliest_member_bit_identical(self, seed):
        rng = np.random.default_rng(seed)
        labels = rng.integers(-1, 6, size=50)  # includes invalid -1 labels
        fast = earliest_member(labels, 6, backend="vectorized")
        slow = earliest_member(labels, 6, backend="scalar")
        assert np.array_equal(fast, slow)

    def test_earliest_member_empty_labels(self):
        for backend in BACKENDS:
            picks = earliest_member(np.array([], dtype=np.int64), 3,
                                    backend=backend)
            assert np.array_equal(picks, [-1, -1, -1])

    def test_blocking_does_not_change_results(self, monkeypatch):
        # The row-block size is a pure memory knob; shrinking it to force
        # many blocks must not change a single bit.
        from repro.analysis import distance as distance_mod

        data = _dataset(64, 7, 3)
        centers = _dataset(5, 7, 4)
        whole = squared_distances(data, centers, backend="vectorized")
        monkeypatch.setattr(distance_mod, "_BLOCK_ELEMENTS", 16)
        blocked = squared_distances(data, centers, backend="vectorized")
        labels, best = assign_points(data, centers, backend="vectorized")
        assert np.array_equal(whole, blocked)
        assert np.array_equal(best, whole[np.arange(64), labels])

    def test_dimension_mismatch_rejected(self):
        with pytest.raises(ClusteringError):
            squared_distances(np.zeros((3, 2)), np.zeros((2, 5)))


class TestKMeansDifferential:
    @pytest.mark.parametrize("n,d,k", SHAPES)
    @pytest.mark.parametrize("seed", SEEDS)
    def test_kmeans_bit_identical(self, n, d, k, seed):
        data = _dataset(n, d, seed)
        fast = kmeans(data, k, seed=seed, n_seeds=2, backend="vectorized")
        slow = kmeans(data, k, seed=seed, n_seeds=2, backend="scalar")
        assert np.array_equal(fast.labels, slow.labels)
        assert np.array_equal(fast.centroids, slow.centroids)
        assert fast.inertia == slow.inertia
        assert fast.inertia_history == slow.inertia_history

    @pytest.mark.parametrize("seed", SEEDS)
    def test_kmeans_on_duplicates_bit_identical(self, seed):
        data = _dataset_with_duplicates(24, 4, seed)
        fast = kmeans(data, 5, seed=seed, n_seeds=2, backend="vectorized")
        slow = kmeans(data, 5, seed=seed, n_seeds=2, backend="scalar")
        assert np.array_equal(fast.labels, slow.labels)
        assert np.array_equal(fast.centroids, slow.centroids)
        assert fast.inertia == slow.inertia

    def test_kmeans_all_identical_points(self):
        data = np.full((10, 3), 0.25)
        for backend in BACKENDS:
            result = kmeans(data, 4, seed=0, n_seeds=1, backend=backend)
            assert result.inertia == 0.0
            assert not np.isnan(result.centroids).any()

    @pytest.mark.parametrize("seed", SEEDS)
    def test_bic_scores_bit_identical(self, seed):
        data = _dataset(60, 5, seed)
        result = kmeans(data, 4, seed=seed, n_seeds=1, backend="vectorized")
        assert bic_score(data, result, backend="vectorized") == \
            bic_score(data, result, backend="scalar")

    @pytest.mark.parametrize("seed", SEEDS)
    def test_cluster_with_bic_bit_identical(self, seed):
        data = _dataset(50, 6, seed)
        fast, fast_scores = cluster_with_bic(
            data, kmax=5, seed=seed, n_seeds=2, backend="vectorized"
        )
        slow, slow_scores = cluster_with_bic(
            data, kmax=5, seed=seed, n_seeds=2, backend="scalar"
        )
        assert fast_scores == slow_scores
        assert fast.k == slow.k
        assert np.array_equal(fast.labels, slow.labels)
        assert np.array_equal(fast.centroids, slow.centroids)


class TestSignatureDifferential:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_normalize_rows_bit_identical(self, seed):
        data = _dataset(20, 8, seed)
        data[3] = 0.0  # a zero row must stay zero on both paths
        fast = normalize_rows(data, backend="vectorized")
        slow = normalize_rows(data, backend="scalar")
        assert np.array_equal(fast, slow)
        assert np.array_equal(fast[3], np.zeros(8))

    @pytest.mark.parametrize("seed", SEEDS)
    def test_project_bbvs_bit_identical(self, seed):
        raw = _dataset(30, 64, seed)
        fast = project_bbvs(raw, 10, seed=seed, backend="vectorized")
        slow = project_bbvs(raw, 10, seed=seed, backend="scalar")
        assert np.array_equal(fast, slow)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_concat_signatures_bit_identical(self, seed):
        segments = _dataset(12, 4 * 32, seed).reshape(12, 4, 32)
        fast = concat_signatures(segments, dim=6, seed=seed,
                                 backend="vectorized")
        slow = concat_signatures(segments, dim=6, seed=seed,
                                 backend="scalar")
        assert fast.shape == (12, 24)
        assert np.array_equal(fast, slow)


class TestBackendSelection:
    def test_default_is_vectorized(self):
        assert get_backend() == "vectorized"
        assert resolve_backend(None) == get_backend()

    def test_set_backend_returns_previous(self):
        previous = set_backend("scalar")
        try:
            assert previous == "vectorized"
            assert get_backend() == "scalar"
        finally:
            set_backend(previous)

    def test_use_backend_restores_on_exit(self):
        before = get_backend()
        with use_backend("scalar"):
            assert get_backend() == "scalar"
        assert get_backend() == before

    def test_use_backend_restores_on_error(self):
        before = get_backend()
        with pytest.raises(RuntimeError):
            with use_backend("scalar"):
                raise RuntimeError("boom")
        assert get_backend() == before

    def test_explicit_argument_beats_global(self):
        data = _dataset(10, 3, 0)
        with use_backend("scalar"):
            # Still runs (and validates) the requested backend.
            assert resolve_backend("vectorized") == "vectorized"
            result = kmeans(data, 2, seed=0, n_seeds=1, backend="vectorized")
        assert result.k == 2

    def test_environment_variable_selects_backend(self, monkeypatch):
        monkeypatch.setattr(backend_mod.CONTROL, "_active", None)
        monkeypatch.setenv(BACKEND_ENV, "scalar")
        assert get_backend() == "scalar"

    def test_bad_environment_variable_rejected(self, monkeypatch):
        monkeypatch.setattr(backend_mod.CONTROL, "_active", None)
        monkeypatch.setenv(BACKEND_ENV, "turbo")
        with pytest.raises(ClusteringError):
            get_backend()

    @pytest.mark.parametrize("bad", ["", "Vectorized", "numpy", "turbo"])
    def test_unknown_backend_rejected_everywhere(self, bad):
        with pytest.raises(ClusteringError):
            set_backend(bad)
        with pytest.raises(ClusteringError):
            resolve_backend(bad)
        with pytest.raises(ClusteringError):
            with use_backend(bad):
                pass
        with pytest.raises(ClusteringError):
            kmeans(np.zeros((3, 2)), 2, backend=bad)


class TestEndToEndPlanIdentity:
    """Whole sampling plans must not depend on the backend."""

    @pytest.fixture(scope="class")
    def plan_sampling(self):
        return SamplingConfig(
            fine_interval_size=1000,
            fine_kmax=10,
            coarse_kmax=3,
            resample_threshold=3000,
            kmeans_seeds=2,
            warmup_instructions=2000,
        )

    def _plans(self, trace, sampling, backend):
        with use_backend(backend):
            coarse = Coasts(sampling).sample(trace, benchmark="gzip")
            multi = MultiLevelSampler(sampling).sample(
                trace, benchmark="gzip", coarse_plan=coarse
            )
        return coarse, multi

    def test_two_level_plans_identical(self, small_trace, plan_sampling):
        fast_coarse, fast_multi = self._plans(
            small_trace, plan_sampling, "vectorized"
        )
        slow_coarse, slow_multi = self._plans(
            small_trace, plan_sampling, "scalar"
        )
        assert fast_coarse.points == slow_coarse.points
        assert fast_multi.points == slow_multi.points
        assert fast_multi.n_clusters == slow_multi.n_clusters
