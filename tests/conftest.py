"""Shared fixtures: small, fast workload instances reused across tests."""

from __future__ import annotations

import pytest

from repro.config import CONFIG_A, SamplingConfig
from repro.engine import FunctionalSimulator, build_trace
from repro.workloads import generate_workload, get_spec, scaled_spec


#: Scale factor used for the shared small workloads.
TEST_SCALE = 0.04


@pytest.fixture(autouse=True)
def _isolate_history(tmp_path, monkeypatch):
    """Keep the cross-run history out of the checkout during tests.

    Every ``run``/``suite``/``bench`` CLI invocation appends to
    ``.repro_history/`` by default; pointing the env override at the
    test's tmp dir stops tests from polluting the working tree (and each
    other).
    """
    monkeypatch.setenv("REPRO_HISTORY_DIR", str(tmp_path / "history"))


@pytest.fixture(scope="session")
def small_spec():
    """A shrunken gzip spec (4 regimes, tiny trip counts)."""
    return scaled_spec(get_spec("gzip"), TEST_SCALE)


@pytest.fixture(scope="session")
def small_workload(small_spec):
    """The generated workload of the shrunken gzip spec."""
    return generate_workload(small_spec)


@pytest.fixture(scope="session")
def small_trace(small_workload):
    """The unrolled trace of the shrunken gzip workload."""
    return build_trace(small_workload)


@pytest.fixture(scope="session")
def small_functional(small_trace):
    """A functional simulator over the shared small trace."""
    return FunctionalSimulator(small_trace)


@pytest.fixture(scope="session")
def small_fine_profile(small_functional):
    """Fine-interval profile (1K intervals) of the small trace."""
    return small_functional.profile_fixed_intervals(1000)


@pytest.fixture(scope="session")
def test_sampling():
    """Sampling config scaled down to match the small workloads."""
    return SamplingConfig(
        fine_interval_size=1000,
        fine_kmax=10,
        coarse_kmax=3,
        resample_threshold=3000,
        kmeans_seeds=2,
        warmup_instructions=2000,
    )


@pytest.fixture(scope="session")
def config_a():
    """Table I config A."""
    return CONFIG_A


@pytest.fixture(scope="session")
def lucas_trace():
    """A shrunken lucas trace (Figure 1's benchmark)."""
    return build_trace(generate_workload(scaled_spec(get_spec("lucas"), TEST_SCALE)))
