"""Tests for the observability subsystem.

Covers the span tracer (nesting, error propagation, serialisation,
cross-process merge), the metrics registry (counter/gauge/histogram
semantics, multi-process merge, Prometheus exposition), the exporters
(JSONL round-trip, report rendering), run manifests, and the
instrumented harness: span trees across retried runs, parallel metrics
equal to serial ones, cache counters surfaced through the registry, and
the byte-level shape of the ``--timing-json`` compatibility view.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cli import main
from repro.config import CONFIG_A
from repro.errors import ObservabilityError
from repro.harness import ExperimentRunner, FaultPolicy, ResultCache
from repro.harness.faults import FAULTS_ENV
from repro.obs import (
    CACHE_HITS,
    CACHE_MISSES,
    FUNCTIONAL_INSTRUCTIONS,
    RUN_RETRIES,
    RUNS_COMPLETED,
    Counter,
    MetricsRegistry,
    ObsContext,
    RunManifest,
    Span,
    Tracer,
    format_trace_report,
    read_trace_jsonl,
    render_prometheus,
    write_trace_jsonl,
)

from .conftest import TEST_SCALE

SUITE_NAMES = ("gzip", "lucas", "mcf")


def _runner(sampling, cache_dir, jobs=1, **policy_kwargs):
    policy_kwargs.setdefault("backoff_base", 0.0)
    return ExperimentRunner(
        sampling=sampling,
        cache=ResultCache(directory=cache_dir),
        workload_scale=TEST_SCALE,
        jobs=jobs,
        policy=FaultPolicy(**policy_kwargs),
    )


# ----------------------------------------------------------------------
# spans
# ----------------------------------------------------------------------
class TestSpans:
    def test_context_nesting(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner", benchmark="gzip") as inner:
                pass
        assert tracer.roots == [outer]
        assert outer.children == [inner]
        assert inner.attributes == {"benchmark": "gzip"}
        assert outer.ended and inner.ended
        assert outer.duration >= inner.duration >= 0.0

    def test_error_marks_span_and_propagates(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("doomed"):
                raise ValueError("boom")
        (span,) = tracer.roots
        assert span.status == "error"
        assert span.error == "ValueError"
        assert span.ended

    def test_start_span_explicit_parent(self):
        tracer = Tracer()
        run = tracer.start_span("run")
        stage = tracer.start_span("baseline", parent=run)
        root = tracer.start_span("other", parent=None)
        assert run.children == [stage]
        assert tracer.roots == [run, root]

    def test_end_is_idempotent(self):
        span = Span("x")
        span.end()
        first = span.duration
        span.end()
        assert span.duration == first

    def test_roundtrip_preserves_tree(self):
        tracer = Tracer()
        with tracer.span("suite", config="a"):
            with tracer.span("run", benchmark="mcf"):
                with pytest.raises(KeyError):
                    with tracer.span("baseline"):
                        raise KeyError("x")
        rebuilt = Span.from_dict(tracer.roots[0].to_dict())
        assert [s.name for s in rebuilt.walk()] == ["suite", "run", "baseline"]
        baseline = rebuilt.children[0].children[0]
        assert baseline.status == "error" and baseline.error == "KeyError"

    def test_merge_payload_reparents_under_current(self):
        worker = Tracer()
        with worker.span("run", benchmark="gzip"):
            pass
        parent = Tracer()
        with parent.span("suite"):
            parent.merge_payload(worker.to_payload())
        (suite,) = parent.roots
        assert [c.name for c in suite.children] == ["run"]

    def test_merge_payload_outside_context_adds_roots(self):
        worker = Tracer()
        with worker.span("run"):
            pass
        parent = Tracer()
        parent.merge_payload(worker.to_payload())
        assert [r.name for r in parent.roots] == ["run"]


# ----------------------------------------------------------------------
# metrics
# ----------------------------------------------------------------------
class TestMetrics:
    def test_counter_accumulates_and_rejects_negative(self):
        registry = MetricsRegistry()
        registry.counter("c_total").inc()
        registry.counter("c_total").inc(2.5)
        assert registry.value("c_total") == 3.5
        with pytest.raises(ObservabilityError):
            registry.counter("c_total").inc(-1)

    def test_labels_key_distinct_instruments(self):
        registry = MetricsRegistry()
        registry.counter("c_total", stage="baseline").inc()
        registry.counter("c_total", stage="profiling").inc(2)
        assert registry.value("c_total", stage="baseline") == 1
        assert registry.value("c_total", stage="profiling") == 2
        assert registry.value("c_total") == 0.0

    def test_kind_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ObservabilityError):
            registry.gauge("x")

    def test_histogram_buckets_and_merge(self):
        a = MetricsRegistry()
        h = a.histogram("h", buckets=(1.0, 10.0))
        for value in (0.5, 5.0, 50.0):
            h.observe(value)
        b = MetricsRegistry()
        b.histogram("h", buckets=(1.0, 10.0)).observe(0.1)
        a.merge(b)
        merged = a.histogram("h", buckets=(1.0, 10.0))
        assert merged.counts == [2, 1, 1]
        assert merged.count == 4
        assert merged.sum == pytest.approx(55.6)

    def test_histogram_bound_mismatch_raises(self):
        a = MetricsRegistry()
        a.histogram("h", buckets=(1.0,))
        b = MetricsRegistry()
        b.histogram("h", buckets=(2.0,))
        with pytest.raises(ObservabilityError):
            a.merge(b)

    def test_gauge_aggregations(self):
        for agg, expected in (("last", 2.0), ("sum", 5.0), ("max", 3.0),
                              ("min", 2.0)):
            a = MetricsRegistry()
            a.gauge("g", agg=agg).set(3.0)
            b = MetricsRegistry()
            b.gauge("g", agg=agg).set(2.0)
            a.merge(b)
            assert a.value("g") == expected, agg

    def test_gauge_never_set_does_not_clobber(self):
        a = MetricsRegistry()
        a.gauge("g").set(7.0)
        b = MetricsRegistry()
        b.gauge("g")  # registered but never set
        a.merge(b)
        assert a.value("g") == 7.0

    def test_dict_roundtrip_equals_merge(self):
        a = MetricsRegistry()
        a.counter("c_total", site="x").inc(4)
        a.gauge("g", agg="max").set(2.0)
        a.histogram("h").observe(0.2)
        rebuilt = MetricsRegistry.from_dict(a.to_dict())
        assert rebuilt.to_dict() == a.to_dict()

    def test_prometheus_exposition_shape(self):
        registry = MetricsRegistry()
        registry.counter("repro_x_total", stage="baseline").inc(2)
        registry.histogram("repro_s", buckets=(0.1, 1.0)).observe(0.5)
        text = render_prometheus(registry)
        assert "# TYPE repro_x_total counter" in text
        assert 'repro_x_total{stage="baseline"} 2' in text
        assert "# TYPE repro_s histogram" in text
        # Cumulative buckets: 0 at <=0.1, 1 at <=1.0 and +Inf.
        assert 'repro_s_bucket{le="0.1"} 0' in text
        assert 'repro_s_bucket{le="1"} 1' in text
        assert 'repro_s_bucket{le="+Inf"} 1' in text
        assert "repro_s_sum 0.5" in text
        assert "repro_s_count 1" in text

    def test_prometheus_escapes_labels(self):
        registry = MetricsRegistry()
        registry.counter("c_total", site='we"ird\\').inc()
        text = render_prometheus(registry)
        assert r'site="we\"ird\\"' in text

    # Prometheus text-format conformance: inside a label value, backslash,
    # double-quote and newline must come out as \\, \" and \n — and
    # backslash must be escaped first so the other escapes' own
    # backslashes are not doubled.
    @pytest.mark.parametrize("raw, escaped", [
        ('say "hi"', r'say \"hi\"'),
        ("back\\slash", r"back\\slash"),
        ("line\nbreak", r"line\nbreak"),
        ('\\"', r'\\\"'),
        ("\\n", r"\\n"),  # a literal backslash-n, not a newline
        ("\n\\\"", r'\n\\\"'),
    ])
    def test_prometheus_label_escaping_conformance(self, raw, escaped):
        registry = MetricsRegistry()
        registry.counter("c_total", site=raw).inc()
        text = render_prometheus(registry)
        assert f'site="{escaped}"' in text
        # One line per sample: the newline never survives into the body.
        body = [l for l in text.splitlines() if not l.startswith("#")]
        assert len(body) == 1


# ----------------------------------------------------------------------
# metrics merge semantics (property-based)
# ----------------------------------------------------------------------
# One registry's worth of traffic: counter increments and histogram
# observations with a small label alphabet.  Integer-valued draws keep
# float addition exact, so associativity can be asserted as equality.
_COUNTER_OP = st.tuples(
    st.sampled_from(["c_one_total", "c_two_total"]),
    st.sampled_from(["", "x", "y"]),
    st.integers(0, 1000),
)
_HISTOGRAM_OP = st.tuples(
    st.sampled_from(["h_one", "h_two"]),
    st.integers(-5, 50),
)
_REGISTRY_OPS = st.tuples(
    st.lists(_COUNTER_OP, max_size=8),
    st.lists(_HISTOGRAM_OP, max_size=8),
)


def _registry_from(ops) -> MetricsRegistry:
    counter_ops, histogram_ops = ops
    registry = MetricsRegistry()
    for name, label, value in counter_ops:
        labels = {"site": label} if label else {}
        registry.counter(name, **labels).inc(value)
    for name, value in histogram_ops:
        registry.histogram(name, buckets=(0.0, 10.0)).observe(value)
    return registry


def _merged(*ops_sequence) -> dict:
    target = _registry_from(ops_sequence[0])
    for ops in ops_sequence[1:]:
        target.merge(_registry_from(ops))
    return target.to_dict()


class TestMergeProperties:
    @given(a=_REGISTRY_OPS, b=_REGISTRY_OPS, c=_REGISTRY_OPS)
    @settings(max_examples=60, deadline=None)
    def test_merge_is_associative(self, a, b, c):
        left = _registry_from(a)
        left.merge(_registry_from(b))
        left.merge(_registry_from(c))
        bc = _registry_from(b)
        bc.merge(_registry_from(c))
        right = _registry_from(a)
        right.merge(bc)
        assert left.to_dict() == right.to_dict()

    @given(a=_REGISTRY_OPS, b=_REGISTRY_OPS, c=_REGISTRY_OPS)
    @settings(max_examples=60, deadline=None)
    def test_merge_order_does_not_matter(self, a, b, c):
        # Counter sums and histogram bucket counts are commutative, so
        # the workers' shipping order must never change suite totals.
        assert _merged(a, b, c) == _merged(a, c, b)

    @given(a=_REGISTRY_OPS)
    @settings(max_examples=30, deadline=None)
    def test_merge_of_empty_is_identity(self, a):
        target = _registry_from(a)
        before = target.to_dict()
        target.merge(MetricsRegistry())
        assert target.to_dict() == before


# ----------------------------------------------------------------------
# instrumented harness
# ----------------------------------------------------------------------
class TestHarnessInstrumentation:
    def test_retried_run_has_one_span_per_attempt(
            self, tmp_path, test_sampling, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV, "raise:gzip:baseline:0")
        runner = _runner(test_sampling, tmp_path / "cache", max_retries=1)
        outcome = runner.run_suite(CONFIG_A, names=["gzip"], journal=False)
        assert outcome.ok
        (suite,) = runner.obs.tracer.roots
        runs = [s for s in suite.children if s.name == "run"]
        assert [r.attributes["attempt"] for r in runs] == [0, 1]
        failed, retried = runs
        assert failed.status == "error"
        (bad_stage,) = [c for c in failed.children if c.status == "error"]
        assert bad_stage.name == "baseline"
        assert bad_stage.attributes["attempt"] == 0
        assert retried.status == "ok"
        assert all(c.attributes["attempt"] == 1 for c in retried.children)
        assert runner.obs.metrics.value(RUN_RETRIES) == 1
        assert runner.obs.metrics.value(RUNS_COMPLETED) == 1

    def test_parallel_metrics_equal_serial(
            self, tmp_path, test_sampling, monkeypatch):
        monkeypatch.delenv(FAULTS_ENV, raising=False)

        def counter_totals(runner):
            # Trace-sharing transport counters (repro_trace_shm_*) are
            # the one deliberate serial/parallel difference: only the
            # parallel driver publishes shared-memory segments. All
            # *work* counters must still match exactly.
            return {
                (name, labels): metric.value
                for name, labels, metric in runner.obs.metrics.samples()
                if metric.kind == "counter"
                and not name.startswith("repro_trace_shm_")
            }

        serial = _runner(test_sampling, tmp_path / "serial")
        serial.run_suite(CONFIG_A, names=list(SUITE_NAMES), journal=False)
        parallel = _runner(test_sampling, tmp_path / "parallel", jobs=2)
        parallel.run_suite(CONFIG_A, names=list(SUITE_NAMES), jobs=2,
                           journal=False)
        assert counter_totals(parallel) == counter_totals(serial)
        assert parallel.obs.metrics.value(FUNCTIONAL_INSTRUCTIONS) > 0
        # One shared segment per distinct benchmark, all attached.
        assert parallel.obs.metrics.value("repro_trace_shm_shared_total") \
            == len(SUITE_NAMES)
        assert serial.obs.metrics.value("repro_trace_shm_shared_total") == 0

    def test_parallel_spans_reparent_under_suite(
            self, tmp_path, test_sampling, monkeypatch):
        monkeypatch.delenv(FAULTS_ENV, raising=False)
        runner = _runner(test_sampling, tmp_path / "cache", jobs=2)
        runner.run_suite(CONFIG_A, names=list(SUITE_NAMES), jobs=2,
                         journal=False)
        (suite,) = runner.obs.tracer.roots
        runs = [s for s in suite.children if s.name == "run"]
        assert sorted(r.attributes["benchmark"] for r in runs) == \
            sorted(SUITE_NAMES)
        for run in runs:
            assert {c.name for c in run.children} >= {"baseline"}

    def test_cache_counters_live_on_registry(self, tmp_path, test_sampling,
                                             monkeypatch):
        monkeypatch.delenv(FAULTS_ENV, raising=False)
        runner = _runner(test_sampling, tmp_path / "cache")
        runner.run_benchmark("gzip", CONFIG_A)
        rerun = _runner(test_sampling, tmp_path / "cache")
        rerun.run_benchmark("gzip", CONFIG_A)
        assert runner.cache.misses == 1 and runner.cache.hits == 0
        assert rerun.cache.hits == 1 and rerun.cache.misses == 0
        # The properties and the registry are the same numbers.
        assert rerun.obs.metrics.value(CACHE_HITS) == rerun.cache.hits
        assert runner.obs.metrics.value(CACHE_MISSES) == runner.cache.misses

    def test_bind_metrics_carries_existing_counts(self):
        cache = ResultCache(enabled=False)
        cache.metrics.counter(CACHE_HITS).inc(3)
        shared = MetricsRegistry()
        cache.bind_metrics(shared)
        assert cache.hits == 3
        assert shared.value(CACHE_HITS) == 3
        cache.bind_metrics(shared)  # idempotent: no double counting
        assert cache.hits == 3

    def test_timing_json_layout_is_stable(self, tmp_path, test_sampling,
                                          monkeypatch):
        """Golden structural pin of the --timing-json payload.

        The timing module is now a shim over spans; this locks the
        serialised shape old consumers parse.
        """
        monkeypatch.delenv(FAULTS_ENV, raising=False)
        runner = _runner(test_sampling, tmp_path / "cache")
        runner.run_suite(CONFIG_A, names=["gzip"], journal=False)
        payload = runner.timing.to_dict()
        assert sorted(payload) == [
            "cache_hits", "cache_misses", "jobs", "runs", "stage_totals",
            "wall_seconds",
        ]
        (run,) = payload["runs"]
        assert sorted(run) == [
            "benchmark", "cache_hit", "config_name", "stages",
            "total_seconds",
        ]
        assert run["benchmark"] == "gzip"
        assert run["cache_hit"] is False
        assert set(run["stages"]) == {
            "trace_build", "profiling", "plan_construction", "baseline",
            "point_simulation", "diagnostics",
        }
        assert all(
            isinstance(v, float) and v >= 0 for v in run["stages"].values()
        )
        assert run["total_seconds"] > 0
        # Span identity (span_id/parent_id/trace_id, the stitched-trace
        # fields) must not leak into the compatibility view: the shim's
        # serialised shape is unchanged by the id fields.
        id_fields = {"span_id", "parent_id", "trace_id", "id", "parent"}
        assert id_fields.isdisjoint(payload)
        assert id_fields.isdisjoint(run)
        assert id_fields.isdisjoint(run["stages"])


# ----------------------------------------------------------------------
# exporters
# ----------------------------------------------------------------------
class TestExport:
    def _context(self):
        obs = ObsContext()
        with obs.tracer.span("suite", config="a"):
            with obs.tracer.span("run", benchmark="gzip", attempt=0):
                pass
        obs.metrics.counter("repro_x_total").inc(2)
        obs.metrics.histogram("repro_s").observe(0.01)
        return obs

    def test_jsonl_roundtrip(self, tmp_path):
        obs = self._context()
        path = tmp_path / "trace.jsonl"
        count = write_trace_jsonl(
            path, obs.tracer, obs.metrics, {"config_name": "a"}
        )
        lines = path.read_text().splitlines()
        assert count == len(lines)
        assert json.loads(lines[0])["type"] == "manifest"
        dump = read_trace_jsonl(path)
        assert dump.manifest["config_name"] == "a"
        assert [s.name for s in dump.spans()] == ["suite", "run"]
        assert dump.metrics.value("repro_x_total") == 2

    def test_read_rejects_garbage(self, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text("not json\n")
        with pytest.raises(ObservabilityError):
            read_trace_jsonl(bad)
        orphan = tmp_path / "orphan.jsonl"
        orphan.write_text(json.dumps(
            {"type": "span", "id": 2, "parent": 99, "name": "x",
             "started_at": 0, "duration": 0, "status": "ok"}
        ) + "\n")
        with pytest.raises(ObservabilityError):
            read_trace_jsonl(orphan)

    def test_report_renders_tree_and_counters(self, tmp_path):
        obs = self._context()
        path = tmp_path / "trace.jsonl"
        write_trace_jsonl(path, obs.tracer, obs.metrics,
                          {"config_name": "a", "repro_version": "1.0.0"})
        report = format_trace_report(read_trace_jsonl(path))
        assert "suite" in report and "run" in report
        assert "benchmark=gzip" in report
        assert "repro_x_total = 2" in report

    def test_report_renders_metrics_only_dump(self, tmp_path):
        """A dump with no spans (gauges/histograms only) still renders."""
        registry = MetricsRegistry()
        registry.gauge("repro_diag_phase_error",
                       benchmark="gzip", method="coasts",
                       phase="0", metric="cpi").set(0.25)
        registry.gauge("repro_diag_phase_error",
                       benchmark="gzip", method="coasts",
                       phase="1", metric="cpi").set(-0.5)
        registry.gauge("repro_lonely").set(7.0)
        registry.histogram("repro_s").observe(0.25)
        tracer = Tracer()  # no spans at all
        path = tmp_path / "metrics.jsonl"
        write_trace_jsonl(path, tracer, registry)
        report = format_trace_report(read_trace_jsonl(path))
        assert "0 root span(s)" in report
        # Wide gauge families aggregate; singletons print their value.
        assert "repro_diag_phase_error: 2 series, min -0.5, max 0.25" \
            in report
        assert "repro_lonely = 7" in report
        assert "repro_s" in report and "count 1" in report

    def test_report_depth_limit(self, tmp_path):
        obs = self._context()
        path = tmp_path / "trace.jsonl"
        write_trace_jsonl(path, obs.tracer, obs.metrics)
        report = format_trace_report(read_trace_jsonl(path), max_depth=0)
        tree_lines = [l for l in report.splitlines() if "run (" in l]
        assert not tree_lines


# ----------------------------------------------------------------------
# manifests
# ----------------------------------------------------------------------
class TestManifest:
    def test_collect_and_roundtrip(self, tmp_path, test_sampling,
                                   monkeypatch):
        monkeypatch.setenv(FAULTS_ENV, "raise:gzip:baseline:5")
        runner = _runner(test_sampling, tmp_path / "cache")
        outcome = runner.run_suite(CONFIG_A, names=["gzip", "mcf"],
                                   journal=False)
        manifest = RunManifest.collect(
            runner, config=CONFIG_A, names=["gzip", "mcf"], outcome=outcome
        )
        assert manifest.config_name == CONFIG_A.name
        assert manifest.benchmarks == ["gzip", "mcf"]
        assert set(manifest.seeds) == {"gzip", "mcf"}
        assert manifest.fault_spec == "raise:gzip:baseline:5"
        assert manifest.outcome["completed"] == 2
        assert manifest.policy["max_retries"] == runner.policy.max_retries
        path = tmp_path / "manifest.json"
        manifest.write(path)
        assert RunManifest.load(path) == manifest

    def test_digests_track_inputs(self, tmp_path, test_sampling):
        a = _runner(test_sampling, tmp_path / "a")
        b = _runner(test_sampling, tmp_path / "b")
        ma = RunManifest.collect(a, config=CONFIG_A)
        mb = RunManifest.collect(b, config=CONFIG_A)
        assert ma.config_digest == mb.config_digest
        assert ma.sampling_digest == mb.sampling_digest

    def test_from_dict_ignores_unknown_keys(self):
        manifest = RunManifest.from_dict(
            {"config_name": "x", "not_a_field": 1}
        )
        assert manifest.config_name == "x"


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
class TestCli:
    def test_version_flag(self, capsys):
        from repro import __version__
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert capsys.readouterr().out.strip() == f"repro {__version__}"

    def test_obs_flags_write_artifacts_and_report_renders(
            self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        monkeypatch.delenv(FAULTS_ENV, raising=False)
        trace = tmp_path / "t.jsonl"
        metrics = tmp_path / "m.prom"
        manifest = tmp_path / "manifest.json"
        code = main([
            "--scale", "0.08", "run", "gzip",
            "--trace-out", str(trace), "--metrics-out", str(metrics),
            "--manifest-out", str(manifest),
        ])
        assert code == 0
        capsys.readouterr()
        assert "repro_runs_completed_total" not in metrics.read_text()
        assert "repro_cache_misses_total 1" in metrics.read_text()
        assert RunManifest.load(manifest).benchmarks == ["gzip"]

        code = main(["obs", "report", str(trace)])
        out = capsys.readouterr().out
        assert code == 0
        assert "benchmark=gzip" in out
        assert "plan_construction" in out

    def test_obs_report_missing_file_is_usage_error(self, capsys, tmp_path):
        for sub in ("report", "diag"):
            code = main(["obs", sub, str(tmp_path / "nope.jsonl")])
            assert code == 2, sub
            assert "no such trace file" in capsys.readouterr().err

    def test_obs_report_corrupt_file_is_data_error(self, capsys, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text("{not json\n")
        for sub in ("report", "diag"):
            code = main(["obs", sub, str(bad)])
            assert code == 1, sub
            assert "error:" in capsys.readouterr().err
