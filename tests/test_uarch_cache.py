"""Tests for the set-associative cache and the occupancy models."""

import pytest

from repro.config import CONFIG_A, CacheConfig
from repro.uarch import Cache, DataHierarchyModel, OccupancyCache
from repro.uarch.occupancy import visit_hit_rate


def small_cache(size=1024, assoc=2, line=32):
    return Cache(CacheConfig("t", size, assoc, line, 1))


class TestSetAssociativeCache:
    def test_first_access_misses_then_hits(self):
        cache = small_cache()
        assert cache.access(5) is False
        assert cache.access(5) is True
        assert cache.misses == 1
        assert cache.hits == 1

    def test_lru_eviction_within_set(self):
        cache = small_cache(size=128, assoc=2, line=32)  # 2 sets, 2 ways
        n_sets = cache.n_sets
        a, b, c = 0, n_sets, 2 * n_sets  # same set
        cache.access(a)
        cache.access(b)
        cache.access(a)          # a is now MRU
        cache.access(c)          # evicts b (LRU)
        assert cache.access(a) is True
        assert cache.access(c) is True
        assert cache.access(b) is False

    def test_access_run_returns_miss_lines(self):
        cache = small_cache()
        misses, miss_lines = cache.access_run([1, 2, 1, 3])
        assert misses == 3
        assert miss_lines == [1, 2, 3]

    def test_streaming_fast_path_counts_all_misses(self):
        cache = small_cache(size=128, assoc=2, line=32)  # 4 lines capacity
        lines = list(range(100))
        misses, miss_lines = cache.access_run(lines, streaming=True)
        assert misses == 100
        assert miss_lines == lines
        assert cache.resident_lines() == 0  # flushed

    def test_streaming_flag_ignored_for_short_runs(self):
        cache = small_cache()
        cache.access_run([1, 2, 3], streaming=True)
        assert cache.resident_lines() == 3

    def test_reset_clears_state_and_stats(self):
        cache = small_cache()
        cache.access(1)
        cache.reset()
        assert cache.accesses == 0
        assert cache.resident_lines() == 0


class TestVisitHitRate:
    def test_cold_visit_all_misses(self):
        assert visit_hit_rate(0.0, 100.0, 50.0, 1000.0) == 0.0

    def test_fully_resident_single_sweep_all_hits(self):
        assert visit_hit_rate(100.0, 100.0, 100.0, 1000.0) == 1.0

    def test_resweep_hits_when_footprint_fits(self):
        # cold entry, two sweeps, footprint fits the cache
        rate = visit_hit_rate(0.0, 100.0, 200.0, 1000.0)
        assert rate == pytest.approx(0.5)

    def test_resweep_thrashes_when_footprint_exceeds_cache(self):
        rate = visit_hit_rate(0.0, 1000.0, 2000.0, 100.0)
        assert rate == pytest.approx(0.05)

    def test_partial_residency_scales_hits(self):
        rate = visit_hit_rate(25.0, 100.0, 100.0, 1000.0)
        assert rate == pytest.approx(0.25)


class TestOccupancyCache:
    def make(self, lines=64):
        return OccupancyCache(CacheConfig("t", lines * 32, 1, 32, 1))

    def test_install_and_residency(self):
        cache = self.make()
        cache.install(1, 40.0)
        assert cache.residency(1) == 40.0
        assert cache.occupancy == 40.0

    def test_install_caps_at_capacity(self):
        cache = self.make(64)
        cache.install(1, 1000.0)
        assert cache.residency(1) == 64.0

    def test_lru_eviction_prefers_stale_regions(self):
        cache = self.make(64)
        cache.install(1, 40.0)
        cache.install(2, 30.0)
        cache.install(3, 30.0)  # overflow 36 -> evict region 1 first
        assert cache.residency(1) == pytest.approx(4.0)
        assert cache.residency(2) == pytest.approx(30.0)
        assert cache.residency(3) == pytest.approx(30.0)

    def test_reset(self):
        cache = self.make()
        cache.install(1, 10.0)
        cache.reset()
        assert cache.occupancy == 0.0


class TestDataHierarchyModel:
    def make(self):
        return DataHierarchyModel(CONFIG_A.dcache, CONFIG_A.l2cache)

    def test_cold_visit_misses_both_levels(self):
        model = self.make()
        l1m, l2m = model.access_data(0, 100.0, "v1", 100.0, 100.0)
        assert l1m == pytest.approx(100.0)
        assert l2m == pytest.approx(100.0)

    def test_second_visit_hits_l2_when_it_fits(self):
        model = self.make()
        model.access_data(0, 100.0, "v1", 100.0, 100.0)
        l1m, l2m = model.access_data(0, 100.0, "v2", 100.0, 100.0)
        # L1 (512 lines) holds the 100-line footprint: both levels hit.
        assert l1m == pytest.approx(0.0)
        assert l2m == pytest.approx(0.0)

    def test_visit_hit_rate_constant_across_batches(self):
        """Slicing a visit into batches must not change per-touch rates."""
        whole = self.make()
        l1_whole, _ = whole.access_data(0, 4096.0, "v", 4096.0, 4096.0)

        split = self.make()
        l1_split = 0.0
        for _ in range(8):
            l1m, _ = split.access_data(0, 4096.0, "v", 4096.0, 512.0)
            l1_split += l1m
        assert l1_split == pytest.approx(l1_whole)

    def test_big_footprint_evicts_small_region_in_l1(self):
        model = self.make()
        model.access_data(0, 100.0, "a", 100.0, 100.0)
        model.access_data(1, 100_000.0, "b", 10_000.0, 10_000.0)
        assert model.l1.residency(0) == pytest.approx(0.0)

    def test_code_region_shares_l2(self):
        model = self.make()
        misses = model.access_code(100.0, 100.0)
        assert misses == pytest.approx(100.0)
        assert model.access_code(100.0, 100.0) == pytest.approx(0.0)

    def test_reset_forgets_visits(self):
        model = self.make()
        model.access_data(0, 100.0, "v", 100.0, 100.0)
        model.reset()
        l1m, _ = model.access_data(0, 100.0, "v", 100.0, 100.0)
        assert l1m == pytest.approx(100.0)
