"""Parser and resolution battery for the benchmark set-expression language.

Three layers:

* positive resolution semantics — named sets, union/difference order,
  slices over sets and over the unbounded family index space;
* negative/fuzz coverage — malformed expressions and unknown names are
  usage errors (HarnessError, CLI exit 2), never tracebacks;
* a Hypothesis round-trip pin: ``parse(format_expr(e)) == e`` over
  generated ASTs, so the canonical formatter and the parser cannot
  drift apart.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cli import main
from repro.errors import HarnessError
from repro.workloads.sets import (
    Binary,
    Name,
    Slice,
    describe_sets,
    format_expr,
    named_sets,
    parse,
    resolve,
)
from repro.workloads.suite import QUICK_SUITE_NAMES, SUITE_NAMES


class TestNamedSets:
    def test_all_and_quick_mirror_suite(self):
        sets = named_sets()
        assert sets["all"] == SUITE_NAMES
        assert sets["quick"] == QUICK_SUITE_NAMES

    def test_int_fp_partition_the_suite(self):
        sets = named_sets()
        assert set(sets["int"]) | set(sets["fp"]) == set(SUITE_NAMES)
        assert not set(sets["int"]) & set(sets["fp"])

    def test_derived_sets_nonempty(self):
        sets = named_sets()
        assert sets["phase-heavy"]
        assert sets["cache-hostile"]

    def test_describe_sets_covers_sets_and_families(self):
        names = [name for name, _ in describe_sets()]
        for expected in ("all", "quick", "fam:irregular",
                         "fam:cache-hostile"):
            assert expected in names


class TestResolution:
    def test_single_benchmark(self):
        assert resolve("gzip") == ("gzip",)

    def test_union_preserves_first_occurrence_order(self):
        assert resolve("quick + gzip") == QUICK_SUITE_NAMES
        merged = resolve("gzip + quick")
        assert merged[0] == "gzip"
        assert sorted(merged) == sorted(QUICK_SUITE_NAMES)

    def test_difference_removes_every_occurrence(self):
        assert resolve("quick - gzip") == tuple(
            n for n in QUICK_SUITE_NAMES if n != "gzip"
        )

    def test_left_associative_precedence(self):
        # (quick - gzip) + gzip re-adds it at the end...
        assert resolve("quick - gzip + gzip")[-1] == "gzip"
        # ...while quick - (gzip + gzip) removes it for good.
        assert "gzip" not in resolve("quick - (gzip + gzip)")

    def test_list_slice_over_named_set(self):
        assert resolve("all[0:3]") == SUITE_NAMES[:3]
        assert resolve("int[2]") == (SUITE_NAMES[2],)

    def test_bare_family_materialises_default_count(self):
        members = resolve("fam:irregular")
        assert len(members) == 16
        assert members[0] == "fam:irregular[0]"

    def test_family_slice_indexes_member_space(self):
        assert resolve("fam:irregular[0:4]") == tuple(
            f"fam:irregular[{i}]" for i in range(4)
        )
        # ...beyond the default count: the index space is unbounded.
        assert resolve("fam:irregular[30:32]") == (
            "fam:irregular[30]", "fam:irregular[31]",
        )

    def test_single_member_resolves_to_itself(self):
        assert resolve("fam:phase-heavy[3]") == ("fam:phase-heavy[3]",)

    def test_import_names_pass_through(self):
        assert resolve("import:/tmp/x.jsonl") == ("import:/tmp/x.jsonl",)

    def test_acceptance_expression(self):
        names = resolve("phase-heavy + fam:irregular[0:4]")
        assert set(named_sets()["phase-heavy"]) <= set(names)
        assert "fam:irregular[3]" in names

    def test_hyphenated_set_name_vs_difference(self):
        # Glued '-' is part of the name; spaced '-' is the operator.
        assert resolve("phase-heavy") == named_sets()["phase-heavy"]
        spaced = resolve("phase-heavy - gzip")
        assert "gzip" not in spaced

    def test_resolve_accepts_parsed_ast(self):
        assert resolve(Name("quick")) == QUICK_SUITE_NAMES


class TestParserNegative:
    @pytest.mark.parametrize("bad", [
        "", "   ", "+", "gzip +", "+ gzip", "(gzip", "gzip)",
        "quick[", "quick[0:", "quick[a:b]", "quick[1:2:3]",
        "quick[2:1]", "quick[]", "gzip & mcf", "gzip ~quick",
        "()", "( )", "[0:2]",
    ])
    def test_malformed_expressions_raise_harness_error(self, bad):
        with pytest.raises(HarnessError):
            parse(bad)

    @pytest.mark.parametrize("bad", [
        "bogus", "fam:nosuch", "fam:nosuch[3]",
    ])
    def test_unknown_names_raise_with_hint(self, bad):
        with pytest.raises(HarnessError) as err:
            resolve(bad)
        assert "fam:irregular" in str(err.value) or "known" in str(err.value)

    def test_import_without_path_is_an_error(self):
        with pytest.raises(HarnessError) as err:
            resolve("import:")
        assert "path" in str(err.value)

    def test_empty_result_is_an_error(self):
        with pytest.raises(HarnessError) as err:
            resolve("quick - all")
        assert "no benchmarks" in str(err.value)

    def test_empty_slice_of_set_is_an_error(self):
        with pytest.raises(HarnessError):
            resolve("quick[0:0]")

    @given(st.text(max_size=30))
    @settings(max_examples=120, deadline=None)
    def test_fuzz_never_raises_anything_else(self, text):
        # Arbitrary garbage either parses+resolves or raises the one
        # user-facing error type — no IndexError/ValueError leaks.
        try:
            resolve(text)
        except HarnessError:
            pass


class TestCliExitCodes:
    """Usage errors surface as exit 2 end to end, data errors as 1."""

    @pytest.mark.parametrize("expr", ["bogus", "quick[2:1]", "quick - all"])
    def test_sets_command_exits_2(self, expr, capsys):
        assert main(["sets", expr]) == 2
        err = capsys.readouterr().err
        assert "error:" in err and "Traceback" not in err

    def test_sets_lists_without_argument(self, capsys):
        assert main(["sets"]) == 0
        out = capsys.readouterr().out
        assert "phase-heavy" in out and "fam:irregular" in out

    def test_sets_resolves_expression(self, capsys):
        assert main(["sets", "quick - gzip + fam:irregular[0]"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert lines == ["lucas", "mcf", "fam:irregular[0]"] or \
            lines == ["mcf", "lucas", "fam:irregular[0]"]

    def test_run_rejects_multi_benchmark_expression(self, capsys):
        assert main(["run", "quick"]) == 2
        err = capsys.readouterr().err
        assert "exactly one" in err

    def test_suite_benchmarks_flag_rejects_malformed(self, capsys):
        assert main(["suite", "--benchmarks", "quick[9:1]"]) == 2

    def test_leaderboard_benchmarks_flag_rejects_unknown(self, capsys):
        assert main(["leaderboard", "--benchmarks", "doom3"]) == 2


# ----------------------------------------------------------------------
# Hypothesis round-trip: parse(format_expr(e)) == e
# ----------------------------------------------------------------------
_names = st.from_regex(
    r"[a-z][a-z0-9_.]{0,6}(-[a-z][a-z0-9]{0,3}){0,2}", fullmatch=True
)
_bound = st.one_of(st.none(), st.integers(0, 99))
_slices = st.tuples(_bound, _bound).filter(
    lambda pair: pair[0] is None or pair[1] is None or pair[0] <= pair[1]
)


def _ast_strategy():
    return st.recursive(
        st.builds(Name, _names),
        lambda children: st.one_of(
            st.builds(
                lambda base, bounds: Slice(base, bounds[0], bounds[1]),
                children, _slices,
            ),
            st.builds(
                lambda op, left, right: Binary(op, left, right),
                st.sampled_from(("+", "-")), children, children,
            ),
        ),
        max_leaves=8,
    )


@given(expr=_ast_strategy())
@settings(max_examples=200, deadline=None)
def test_parse_format_round_trip(expr):
    assert parse(format_expr(expr)) == expr


@given(expr=_ast_strategy())
@settings(max_examples=100, deadline=None)
def test_format_is_canonical(expr):
    """Formatting is a fixed point: format(parse(format(e))) == format(e)."""
    text = format_expr(expr)
    assert format_expr(parse(text)) == text
