"""Tests for the performance-regression bench subsystem and its CLI."""

import json

import pytest

from repro.bench import (
    BENCH_SCHEMA_VERSION,
    BENCH_SUITE,
    BenchCase,
    BenchReport,
    compare_reports,
    load_report,
    run_bench,
    select_cases,
)
from repro.bench.runner import BENCH_REPS, BackendTiming, CaseResult
from repro.cli import EXIT_PARTIAL, main
from repro.errors import HarnessError
from repro.obs import ObsContext


def _fake_case(name="fake", backends=("vectorized", "scalar")):
    calls = {"setup": 0, "run": []}

    def setup(scale):
        calls["setup"] += 1
        return {"scale": scale}

    def run(payload, backend):
        calls["run"].append(backend)

    case = BenchCase(
        name=name, description="a fake case", backends=tuple(backends),
        setup=setup, run=run,
    )
    return case, calls


def _result(name="fake", vec=0.01, scal=0.05, backends=("vectorized", "scalar")):
    timings = {}
    if "vectorized" in backends:
        timings["vectorized"] = BackendTiming("vectorized", (vec, vec * 2))
    if "scalar" in backends:
        timings["scalar"] = BackendTiming("scalar", (scal, scal * 2))
    return CaseResult(
        name=name, description="d", reps=2, warmup=0, timings=timings
    )


class TestSuite:
    def test_default_suite_order(self):
        names = [case.name for case in select_cases(None)]
        assert names == [case.name for case in BENCH_SUITE]
        assert "kmeans_sweep" in names and "detailed_timing" in names

    def test_filter_selects_substring(self):
        chosen = select_cases("kmeans")
        assert [case.name for case in chosen] == ["kmeans_sweep"]

    def test_unmatched_filter_rejected(self):
        with pytest.raises(HarnessError, match="no bench case"):
            select_cases("warp_drive")

    def test_speedup_cases_have_scalar_reference(self):
        for case in BENCH_SUITE:
            assert case.backends[0] == "vectorized"
            assert set(case.backends) <= {"vectorized", "scalar"}

    def test_engine_cases_present_with_layer(self):
        by_name = {case.name: case for case in BENCH_SUITE}
        for name in ("trace_build", "coarse_profile", "structure_profile",
                     "functional_run"):
            assert by_name[name].layer == "engine"
            assert by_name[name].backends == ("vectorized", "scalar")
        assert by_name["kmeans_sweep"].layer == "analysis"

    def test_trace_filter_selects_engine_case(self):
        chosen = select_cases("trace_")
        assert [case.name for case in chosen] == ["trace_build"]

    def test_glob_filter_matches_whole_name(self):
        assert [c.name for c in select_cases("trace_*")] == ["trace_build"]
        assert [c.name for c in select_cases("*_profile")] == \
            ["coarse_profile", "structure_profile"]

    def test_layer_filter_selects_whole_layer(self):
        chosen = select_cases("engine")
        assert [case.name for case in chosen] == \
            ["trace_build", "coarse_profile", "structure_profile",
             "functional_run"]
        assert all(case.layer == "engine" for case in chosen)

    def test_unmatched_filter_raises(self):
        with pytest.raises(HarnessError, match="no bench case"):
            select_cases("no_such_case_*")


class TestRunner:
    def test_run_counts_and_timings(self):
        case, calls = _fake_case()
        obs = ObsContext()
        results = run_bench([case], scale=0.1, reps=3, warmup=2, obs=obs)
        assert calls["setup"] == 1
        # Per backend: 2 warmup + 3 measured.
        assert calls["run"].count("vectorized") == 5
        assert calls["run"].count("scalar") == 5
        (result,) = results
        assert set(result.timings) == {"vectorized", "scalar"}
        assert len(result.timings["vectorized"].seconds) == 3
        assert result.speedup is not None and result.speedup > 0
        assert obs.metrics.value(
            BENCH_REPS, case="fake", backend="vectorized"
        ) == 3

    def test_spans_nest_under_case(self):
        case, _ = _fake_case()
        obs = ObsContext()
        run_bench([case], scale=0.1, reps=2, warmup=0, obs=obs)
        (root,) = obs.tracer.roots
        assert root.name == "bench_case"
        names = [span.name for span in root.walk()]
        assert names.count("bench_setup") == 1
        assert names.count("bench_rep") == 4  # 2 reps x 2 backends
        reps = [s for s in root.walk() if s.name == "bench_rep"]
        assert all(s.duration is not None for s in reps)

    def test_vectorized_only_case_has_no_speedup(self):
        case, _ = _fake_case(backends=("vectorized",))
        (result,) = run_bench([case], scale=0.1, reps=1, warmup=0)
        assert result.speedup is None

    def test_bad_reps_and_warmup_rejected(self):
        case, _ = _fake_case()
        with pytest.raises(HarnessError, match="reps"):
            run_bench([case], scale=0.1, reps=0)
        with pytest.raises(HarnessError, match="warmup"):
            run_bench([case], scale=0.1, reps=1, warmup=-1)

    def test_backend_timing_statistics(self):
        timing = BackendTiming("vectorized", (0.3, 0.1, 0.2))
        assert timing.best == 0.1
        assert timing.mean == pytest.approx(0.2)
        assert timing.to_dict()["best_seconds"] == 0.1


class TestReport:
    def test_build_stamps_schema_and_host(self):
        report = BenchReport.build([_result()], scale=0.25)
        assert report.schema_version == BENCH_SCHEMA_VERSION
        for key in ("python_version", "numpy_version", "platform",
                    "repro_version", "created"):
            assert key in report.host
        assert report.speedup("fake") == pytest.approx(5.0)
        assert report.best_seconds("fake") == 0.01
        assert report.case("absent") is None

    def test_write_load_round_trip(self, tmp_path):
        report = BenchReport.build(
            [_result()], scale=0.25, min_speedups={"fake": 2.0}
        )
        path = report.write(tmp_path / "bench.json")
        loaded = load_report(path)
        assert loaded.to_dict() == report.to_dict()
        assert loaded.min_speedups == {"fake": 2.0}

    def test_missing_baseline_rejected(self, tmp_path):
        with pytest.raises(HarnessError, match="not found"):
            load_report(tmp_path / "nope.json")

    def test_unreadable_baseline_rejected(self, tmp_path):
        path = tmp_path / "garbage.json"
        path.write_text("{not json")
        with pytest.raises(HarnessError, match="unreadable"):
            load_report(path)

    def test_unknown_schema_version_rejected(self, tmp_path):
        path = tmp_path / "future.json"
        path.write_text(json.dumps({"schema_version": 99, "cases": []}))
        with pytest.raises(HarnessError, match="schema version"):
            load_report(path)

    def test_committed_baseline_loads(self):
        baseline = load_report("benchmarks/BENCH_baseline.json")
        assert baseline.schema_version == BENCH_SCHEMA_VERSION
        assert set(baseline.min_speedups) <= {
            case["name"] for case in baseline.cases
        }
        # The tentpole's acceptance floor: kmeans sweep >= 2x.
        assert baseline.min_speedups["kmeans_sweep"] >= 2.0
        # The engine floors: coarse profiling >= 5x, trace build >= 2x.
        assert baseline.min_speedups["coarse_profile"] >= 5.0
        assert baseline.min_speedups["trace_build"] >= 2.0


class TestCompare:
    def test_clean_comparison(self):
        baseline = BenchReport.build(
            [_result()], scale=0.25, min_speedups={"fake": 2.0}
        )
        current = BenchReport.build([_result()], scale=0.25)
        assert compare_reports(current, baseline) == []

    def test_floor_violation_flagged(self):
        baseline = BenchReport.build(
            [_result()], scale=0.25, min_speedups={"fake": 2.0}
        )
        slow = BenchReport.build(
            [_result(vec=0.04, scal=0.05)], scale=0.25
        )
        regressions = compare_reports(slow, baseline)
        assert any("floor" in r for r in regressions)

    def test_floor_demands_a_measured_ratio(self):
        baseline = BenchReport.build(
            [_result(backends=("vectorized",))], scale=0.25,
            min_speedups={"fake": 2.0},
        )
        current = BenchReport.build(
            [_result(backends=("vectorized",))], scale=0.25
        )
        regressions = compare_reports(current, baseline)
        assert any("no ratio was measured" in r for r in regressions)

    def test_relative_slowdown_flagged(self):
        baseline = BenchReport.build([_result(vec=0.01, scal=0.10)],
                                     scale=0.25)  # 10x
        current = BenchReport.build([_result(vec=0.01, scal=0.04)],
                                    scale=0.25)   # 4x
        regressions = compare_reports(current, baseline, threshold=0.5)
        assert any("below baseline" in r for r in regressions)
        # A generous threshold tolerates the same drop.
        assert compare_reports(current, baseline, threshold=0.99) == []

    def test_missing_case_flagged(self):
        baseline = BenchReport.build([_result()], scale=0.25)
        current = BenchReport.build([], scale=0.25)
        regressions = compare_reports(current, baseline)
        assert regressions == ["fake: present in baseline but not run"]

    def test_wall_clock_check_is_opt_in(self):
        # Ten times slower in wall-clock at an unchanged speedup ratio:
        # only the opt-in wall check may fire.
        baseline = BenchReport.build([_result(vec=0.01, scal=0.05)],
                                     scale=0.25)
        current = BenchReport.build([_result(vec=0.10, scal=0.50)],
                                    scale=0.25)
        assert compare_reports(current, baseline, wall=False) == []
        regressions = compare_reports(current, baseline, wall=True)
        assert any("exceeds baseline" in r for r in regressions)

    def test_bad_threshold_rejected(self):
        report = BenchReport.build([], scale=0.25)
        with pytest.raises(HarnessError, match="threshold"):
            compare_reports(report, report, threshold=0.0)


class TestBenchCLI:
    def test_list_prints_suite(self, capsys):
        assert main(["bench", "--list"]) == 0
        out = capsys.readouterr().out
        for case in BENCH_SUITE:
            assert case.name in out
            assert f"[{case.layer}:" in out

    def test_nonpositive_scale_exits_config_error(self, capsys, tmp_path):
        code = main([
            "bench", "--filter", "trace_build", "--scale", "0",
            "--out", str(tmp_path / "bench.json"),
        ])
        assert code == 2
        assert "scale" in capsys.readouterr().err

    def test_negative_scale_exits_config_error(self, capsys, tmp_path):
        code = main([
            "bench", "--filter", "trace_build", "--scale", "-0.5",
            "--out", str(tmp_path / "bench.json"),
        ])
        assert code == 2
        assert "scale" in capsys.readouterr().err

    def test_negative_reps_exits_config_error(self, capsys, tmp_path):
        code = main([
            "bench", "--filter", "trace_build", "--reps", "-3",
            "--out", str(tmp_path / "bench.json"),
        ])
        assert code == 2
        assert "reps" in capsys.readouterr().err

    def test_small_real_run_writes_report(self, capsys, tmp_path):
        out_path = tmp_path / "bench.json"
        code = main([
            "bench", "--filter", "signature_build", "--reps", "1",
            "--warmup", "0", "--out", str(out_path),
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "signature_build" in out and "bench report written" in out
        report = load_report(out_path)
        assert report.schema_version == BENCH_SCHEMA_VERSION
        assert report.speedup("signature_build") is not None

    def test_missing_baseline_exits_config_error(self, capsys, tmp_path):
        code = main([
            "bench", "--filter", "signature_build", "--reps", "1",
            "--compare", str(tmp_path / "absent.json"),
            "--out", str(tmp_path / "bench.json"),
        ])
        err = capsys.readouterr().err
        assert code == 2
        assert "error:" in err and "not found" in err
        assert "Traceback" not in err

    def test_bad_reps_exits_config_error(self, capsys, tmp_path):
        code = main([
            "bench", "--filter", "signature_build", "--reps", "0",
            "--out", str(tmp_path / "bench.json"),
        ])
        assert code == 2
        assert "reps" in capsys.readouterr().err

    def test_bad_threshold_exits_config_error(self, capsys, tmp_path):
        baseline = tmp_path / "baseline.json"
        BenchReport.build([], scale=0.25).write(baseline)
        code = main([
            "bench", "--filter", "signature_build", "--reps", "1",
            "--compare", str(baseline), "--threshold", "0",
            "--out", str(tmp_path / "bench.json"),
        ])
        assert code == 2
        assert "threshold" in capsys.readouterr().err

    def test_unmatched_filter_exits_config_error(self, capsys):
        code = main(["bench", "--filter", "warp_drive", "--list"])
        assert code == 2
        assert "no bench case" in capsys.readouterr().err

    def test_regression_exits_partial(self, capsys, tmp_path):
        # An absurd floor no host can meet forces the regression path.
        baseline = tmp_path / "baseline.json"
        BenchReport.build(
            [_result(name="signature_build")], scale=0.25,
            min_speedups={"signature_build": 1e9},
        ).write(baseline)
        code = main([
            "bench", "--filter", "signature_build", "--reps", "1",
            "--warmup", "0", "--compare", str(baseline),
            "--out", str(tmp_path / "bench.json"),
        ])
        captured = capsys.readouterr()
        assert code == EXIT_PARTIAL
        assert "perf regression" in captured.err
        assert "floor" in captured.err
