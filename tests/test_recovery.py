"""Tests for fault-tolerant suite execution.

Exercises the recovery layer end to end with deterministic fault
injection (``$REPRO_FAULTS``): transient and permanent failures on the
serial and parallel paths, per-run timeouts against injected hangs,
killed pool workers, corrupted cache entries, and checkpoint/resume via
the suite journal.  Faulted campaigns must produce results byte-identical
to clean serial ones — retries re-run a pure function.
"""

import json
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.config import CONFIG_A
from repro.errors import (
    FaultSpecError,
    HarnessError,
    InjectedFault,
    RunTimeout,
)
from repro.harness import (
    ExperimentRunner,
    FaultPolicy,
    ResultCache,
    RunFailure,
    SuiteJournal,
    SuiteOutcome,
    failure_rows,
    parse_faults,
    speedup_experiment,
    suite_fingerprint,
)
from repro.harness.faults import FAULTS_ENV, FaultSpec
from repro.harness.recovery import assemble_outcome, run_deadline

from .conftest import TEST_SCALE

#: Benchmarks used by the fault-injection suites (quick subset).
SUITE_NAMES = ("gzip", "lucas", "mcf")

#: Generous per-run bound for hang tests: far above a clean run at
#: TEST_SCALE (tenths of a second) yet short enough to keep tests quick.
HANG_TIMEOUT = 3.0


def _runner(sampling, cache_dir, jobs=1, **policy_kwargs):
    policy_kwargs.setdefault("backoff_base", 0.0)
    return ExperimentRunner(
        sampling=sampling,
        cache=ResultCache(directory=cache_dir),
        workload_scale=TEST_SCALE,
        jobs=jobs,
        policy=FaultPolicy(**policy_kwargs),
    )


def _payload(runs):
    return [json.dumps(run.to_dict(), sort_keys=True) for run in runs]


@pytest.fixture
def clean_payload(tmp_path, test_sampling, monkeypatch):
    """Fault-free serial reference results for SUITE_NAMES."""
    monkeypatch.delenv(FAULTS_ENV, raising=False)
    runner = _runner(test_sampling, tmp_path / "clean")
    return _payload(runner.run_suite(CONFIG_A, names=SUITE_NAMES))


class TestFaultPolicy:
    def test_defaults(self):
        policy = FaultPolicy()
        assert policy.max_retries == 1
        assert policy.max_attempts == 2
        assert policy.timeout is None
        assert not policy.fail_fast

    def test_backoff_is_deterministic_exponential(self):
        policy = FaultPolicy(backoff_base=0.5, backoff_factor=2.0)
        assert policy.backoff_seconds(0) == 0.0
        assert policy.backoff_seconds(1) == 0.5
        assert policy.backoff_seconds(2) == 1.0
        assert policy.backoff_seconds(3) == 2.0

    @pytest.mark.parametrize("kwargs", [
        {"max_retries": -1},
        {"timeout": 0.0},
        {"timeout": -2.0},
        {"backoff_base": -0.1},
        {"backoff_factor": 0.5},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(HarnessError):
            FaultPolicy(**kwargs)


class TestRunFailure:
    def _failure(self):
        return RunFailure(
            benchmark="gzip", config_name="config_a", attempts=2,
            max_attempts=3, error_type="InjectedFault",
            error_message="boom", traceback="tb", stage="baseline",
        )

    def test_label_and_describe(self):
        failure = self._failure()
        assert failure.label == "FAILED(2/3)"
        text = failure.describe()
        assert "gzip" in text and "InjectedFault" in text
        assert "in baseline" in text and "2/3" in text

    def test_dict_roundtrip(self):
        failure = self._failure()
        assert RunFailure.from_dict(failure.to_dict()) == failure

    def test_from_exception_reads_stage_marker(self):
        error = InjectedFault("boom")
        error._repro_stage = "point_simulation"
        failure = RunFailure.from_exception(
            "mcf", "config_b", error, attempts=1, max_attempts=1, tb="tb",
        )
        assert failure.stage == "point_simulation"
        assert failure.error_type == "InjectedFault"
        failure = RunFailure.from_exception(
            "mcf", "config_b", HarnessError("x"), 1, 1, tb="tb",
        )
        assert failure.stage is None

    def test_failure_rows_mark_gaps(self):
        rows = failure_rows([self._failure()], width=4)
        assert rows == [["gzip", "FAILED(2/3)", "-", "-"]]


class TestParseFaults:
    def test_single_spec(self):
        (spec,) = parse_faults("raise:gzip:baseline:0,1")
        assert spec == FaultSpec("raise", "gzip", "baseline", (0, 1))
        assert spec.matches("gzip", "baseline", 0)
        assert spec.matches("gzip", "baseline", 1)
        assert not spec.matches("gzip", "baseline", 2)
        assert not spec.matches("gzip", "profiling", 0)
        assert not spec.matches("mcf", "baseline", 0)

    def test_wildcards(self):
        (spec,) = parse_faults("hang:*:*:*")
        assert spec.attempts == ()
        assert spec.matches("anything", "any_stage", 7)

    def test_stage_none_skips_stage_matching(self):
        (spec,) = parse_faults("corrupt:gzip:baseline:0")
        # corrupt faults fire after the run publishes, outside any stage.
        assert spec.matches("gzip", None, 0)

    def test_multiple_specs(self):
        specs = parse_faults("raise:gzip:*:0; kill:mcf:baseline:*")
        assert [s.kind for s in specs] == ["raise", "kill"]

    def test_empty_is_no_faults(self):
        assert parse_faults("") == ()
        assert parse_faults(" ; ") == ()

    @pytest.mark.parametrize("text", [
        "raise:gzip:baseline",          # wrong arity
        "explode:gzip:baseline:0",      # unknown kind
        "raise:gzip:baseline:x",        # non-integer attempt
        "raise:gzip:baseline:-1",       # negative attempt
        "raise:gzip:baseline:",         # empty attempt list
    ])
    def test_malformed_specs_rejected(self, text):
        with pytest.raises(FaultSpecError):
            parse_faults(text)


class TestSuiteOutcome:
    def test_behaves_like_a_run_list(self):
        outcome = SuiteOutcome(["a", "b"])
        assert len(outcome) == 2
        assert outcome[0] == "a"
        assert list(outcome) == ["a", "b"]
        assert outcome.ok
        outcome.raise_if_failed()

    def test_failures_raise_in_strict_mode(self):
        failure = RunFailure("gzip", "config_a", 2, 2, "InjectedFault",
                             "boom", "tb", "baseline")
        outcome = SuiteOutcome(["a"], [failure])
        assert not outcome.ok
        assert "1 of 2 runs failed" in outcome.failure_summary()
        with pytest.raises(HarnessError):
            outcome.raise_if_failed()

    def test_assemble_outcome_rejects_lost_runs(self):
        tasks = [("gzip", CONFIG_A), ("mcf", CONFIG_A)]
        with pytest.raises(HarnessError, match="mcf"):
            assemble_outcome(tasks, {0: "run"}, {})
        outcome = assemble_outcome(tasks, {0: "run"}, {
            1: RunFailure("mcf", "config_a", 1, 1, "E", "m", "tb", None),
        })
        assert list(outcome) == ["run"]
        assert len(outcome.failures) == 1


class TestRunDeadline:
    def test_interrupts_a_hung_run(self):
        began = time.monotonic()
        with pytest.raises(RunTimeout):
            with run_deadline(0.2):
                time.sleep(30)
        assert time.monotonic() - began < 5.0

    def test_disabled_and_cleared(self):
        with run_deadline(None):
            pass
        with run_deadline(5.0):
            pass
        time.sleep(0.05)  # a leaked timer would fire here


class TestSerialRecovery:
    def test_transient_failure_retried_to_identical_result(
            self, tmp_path, test_sampling, monkeypatch, clean_payload):
        monkeypatch.setenv(FAULTS_ENV, "raise:gzip:baseline:0")
        runner = _runner(test_sampling, tmp_path / "faulted", max_retries=1)
        outcome = runner.run_suite(CONFIG_A, names=SUITE_NAMES)
        assert outcome.ok
        assert _payload(outcome) == clean_payload

    def test_permanent_failure_isolates_one_run(
            self, tmp_path, test_sampling, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV, "raise:mcf:baseline:*")
        runner = _runner(test_sampling, tmp_path, max_retries=1)
        outcome = runner.run_suite(CONFIG_A, names=SUITE_NAMES)
        assert [run.benchmark for run in outcome] == ["gzip", "lucas"]
        (failure,) = outcome.failures
        assert failure.benchmark == "mcf"
        assert failure.stage == "baseline"
        assert failure.attempts == 2 and failure.max_attempts == 2
        assert failure.error_type == "InjectedFault"
        assert "InjectedFault" in failure.traceback
        assert runner.failures == [failure]

    def test_fail_fast_restores_abort_semantics(
            self, tmp_path, test_sampling, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV, "raise:gzip:trace_build:*")
        runner = _runner(test_sampling, tmp_path, max_retries=0,
                         fail_fast=True)
        with pytest.raises(HarnessError, match="fail_fast"):
            runner.run_suite(CONFIG_A, names=SUITE_NAMES)

    def test_hang_hits_timeout_and_retry_succeeds(
            self, tmp_path, test_sampling, monkeypatch, clean_payload):
        monkeypatch.setenv(FAULTS_ENV, "hang:gzip:baseline:0")
        runner = _runner(test_sampling, tmp_path / "hung",
                         max_retries=1, timeout=HANG_TIMEOUT)
        outcome = runner.run_suite(CONFIG_A, names=SUITE_NAMES)
        assert outcome.ok
        assert _payload(outcome) == clean_payload

    def test_timeout_exhausted_becomes_failure(
            self, tmp_path, test_sampling, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV, "hang:lucas:baseline:*")
        runner = _runner(test_sampling, tmp_path, max_retries=0, timeout=1.0)
        outcome = runner.run_suite(CONFIG_A, names=("gzip", "lucas"))
        (failure,) = outcome.failures
        assert failure.benchmark == "lucas"
        assert failure.error_type == "RunTimeout"
        assert failure.stage == "baseline"
        assert [run.benchmark for run in outcome] == ["gzip"]


class TestParallelRecovery:
    def test_transient_double_failure_byte_identical(
            self, tmp_path, test_sampling, monkeypatch, clean_payload):
        # The acceptance scenario: one benchmark fails twice transiently,
        # the parallel suite retries it to completion, and the result set
        # matches a clean serial run exactly.
        monkeypatch.setenv(FAULTS_ENV, "raise:gzip:baseline:0,1")
        runner = _runner(test_sampling, tmp_path / "faulted", jobs=2,
                         max_retries=2)
        outcome = runner.run_suite(CONFIG_A, names=SUITE_NAMES)
        assert outcome.ok
        assert _payload(outcome) == clean_payload

    def test_permanent_failure_isolates_one_run(
            self, tmp_path, test_sampling, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV, "raise:lucas:*:*")
        runner = _runner(test_sampling, tmp_path, jobs=2, max_retries=1)
        outcome = runner.run_suite(CONFIG_A, names=SUITE_NAMES)
        assert [run.benchmark for run in outcome] == ["gzip", "mcf"]
        (failure,) = outcome.failures
        assert failure.benchmark == "lucas"
        assert failure.stage is not None
        assert failure.attempts == 2

    def test_killed_worker_recovered(
            self, tmp_path, test_sampling, monkeypatch, clean_payload):
        # os._exit(137) in a worker breaks the pool; the driver respawns
        # it, charges the crash an attempt, and the retry completes.
        monkeypatch.setenv(FAULTS_ENV, "kill:gzip:trace_build:0")
        runner = _runner(test_sampling, tmp_path / "killed", jobs=2,
                         max_retries=2)
        outcome = runner.run_suite(CONFIG_A, names=SUITE_NAMES)
        assert outcome.ok
        assert _payload(outcome) == clean_payload

    def test_hang_hits_timeout_and_retry_succeeds(
            self, tmp_path, test_sampling, monkeypatch, clean_payload):
        monkeypatch.setenv(FAULTS_ENV, "hang:lucas:baseline:0")
        runner = _runner(test_sampling, tmp_path / "hung", jobs=2,
                         max_retries=1, timeout=HANG_TIMEOUT)
        outcome = runner.run_suite(CONFIG_A, names=SUITE_NAMES)
        assert outcome.ok
        assert _payload(outcome) == clean_payload


class TestBackoffHistogram:
    def test_serial_retry_waits_are_observed(
            self, tmp_path, test_sampling, monkeypatch):
        from repro.obs import RETRY_BACKOFF_SECONDS

        monkeypatch.setenv(FAULTS_ENV, "raise:gzip:baseline:0")
        runner = _runner(test_sampling, tmp_path, max_retries=1)
        outcome = runner.run_suite(CONFIG_A, names=("gzip",))
        assert outcome.ok
        histogram = runner.obs.metrics.histogram(RETRY_BACKOFF_SECONDS)
        assert histogram.count == 1
        assert histogram.sum == 0.0  # backoff_base=0 in these tests

    def test_parallel_retry_waits_are_observed(
            self, tmp_path, test_sampling, monkeypatch):
        from repro.obs import RETRY_BACKOFF_SECONDS

        monkeypatch.setenv(FAULTS_ENV, "raise:gzip:baseline:0")
        runner = _runner(test_sampling, tmp_path, jobs=2, max_retries=1)
        outcome = runner.run_suite(CONFIG_A, names=("gzip", "lucas"))
        assert outcome.ok
        histogram = runner.obs.metrics.histogram(RETRY_BACKOFF_SECONDS)
        assert histogram.count == 1


class TestCorruptCacheInjection:
    def test_corrupt_entry_quarantined_and_recomputed(
            self, tmp_path, test_sampling, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV, "corrupt:gzip:*:0")
        first = _runner(test_sampling, tmp_path)
        run = first.run_benchmark("gzip", CONFIG_A)
        # The fault overwrote the just-published entry with garbage.
        monkeypatch.delenv(FAULTS_ENV)
        second = _runner(test_sampling, tmp_path)
        again = second.run_benchmark("gzip", CONFIG_A)
        assert second.cache.corrupt == 1
        assert second.cache.hits == 0
        assert list(tmp_path.glob("*.json.corrupt"))
        assert json.dumps(again.to_dict(), sort_keys=True) == \
            json.dumps(run.to_dict(), sort_keys=True)
        # The recompute republished a healthy entry.
        third = _runner(test_sampling, tmp_path)
        third.run_benchmark("gzip", CONFIG_A)
        assert third.cache.hits == 1 and third.cache.corrupt == 0


class TestSuiteJournal:
    def _journal(self, tmp_path, fingerprint="abc123"):
        return SuiteJournal(tmp_path / "suite.journal.jsonl", fingerprint)

    def test_fingerprint_tracks_inputs(self, tmp_path, test_sampling):
        runner = _runner(test_sampling, tmp_path)
        base = suite_fingerprint(runner, CONFIG_A, SUITE_NAMES)
        assert base == suite_fingerprint(runner, CONFIG_A, SUITE_NAMES)
        assert base != suite_fingerprint(runner, CONFIG_A, ("gzip",))
        other = ExperimentRunner(workload_scale=TEST_SCALE / 2)
        assert base != suite_fingerprint(other, CONFIG_A, SUITE_NAMES)

    def test_record_and_load_roundtrip(self, tmp_path):
        journal = self._journal(tmp_path)
        journal.reset()
        journal.record_run("gzip", "config_a", {"cpi": 1.0})
        journal.record_failure(RunFailure(
            "mcf", "config_a", 2, 2, "InjectedFault", "boom", "tb",
            "baseline",
        ))
        clone = self._journal(tmp_path)
        assert clone.load() == 2
        assert clone.completed() == {("gzip", "config_a"): {"cpi": 1.0}}
        (failure,) = clone.failed()
        assert failure.benchmark == "mcf"
        clone.drop_failures()
        assert clone.failed() == []
        assert self._journal(tmp_path).load() == 1

    def test_foreign_fingerprint_ignored(self, tmp_path):
        journal = self._journal(tmp_path)
        journal.reset()
        journal.record_run("gzip", "config_a", {})
        assert self._journal(tmp_path, "different").load() == 0

    def test_torn_lines_tolerated(self, tmp_path):
        journal = self._journal(tmp_path)
        journal.reset()
        journal.record_run("gzip", "config_a", {})
        with open(journal.path, "a") as handle:
            handle.write('{"type": "run", "benchm')  # torn mid-write
        assert self._journal(tmp_path).load() == 1

    def test_torn_lines_counted_and_healed(self, tmp_path):
        from repro.obs import JOURNAL_TORN, MetricsRegistry

        journal = self._journal(tmp_path)
        journal.reset()
        journal.record_run("gzip", "config_a", {})
        with open(journal.path, "a") as handle:
            handle.write('{"type": "run", "benchm')  # torn final line
        metrics = MetricsRegistry()
        healed = SuiteJournal(journal.path, "abc123", metrics=metrics)
        assert healed.load() == 1
        assert metrics.value(JOURNAL_TORN) == 1.0
        # The load rewrote the file: the torn tail is gone, so a record
        # appended now cannot concatenate onto it.
        healed.record_run("mcf", "config_a", {})
        lines = journal.path.read_text().splitlines()
        assert len(lines) == 3  # header + two runs, all valid JSON
        for line in lines:
            json.loads(line)
        fresh = SuiteJournal(journal.path, "abc123", metrics=metrics)
        assert fresh.load() == 2
        assert metrics.value(JOURNAL_TORN) == 1.0  # no new tears

    def test_records_append_without_rewriting(self, tmp_path):
        # The append-only promise: recording N runs must not rewrite the
        # file N times (the old scheme replaced it per record, making
        # checkpointing O(n^2) over a campaign).  os.replace allocates a
        # new inode, so inode stability proves appends.
        import os

        journal = self._journal(tmp_path)
        journal.reset()
        inode = os.stat(journal.path).st_ino
        for index in range(5):
            journal.record_run(f"bench{index}", "config_a", {"i": index})
            journal.record_failure(RunFailure(
                f"bench{index}", "config_a", 1, 1, "E", "m", "tb", None,
            ))
        assert os.stat(journal.path).st_ino == inode
        clone = self._journal(tmp_path)
        assert clone.load() == 10
        assert len(clone.completed()) == 5
        assert len(clone.failed()) == 5
        # Structural edits still rewrite atomically.
        clone.drop_failures()
        assert os.stat(journal.path).st_ino != inode
        assert self._journal(tmp_path).load() == 5

    def test_missing_file_loads_empty(self, tmp_path):
        assert self._journal(tmp_path).load() == 0


class TestResume:
    def test_resume_reattempts_only_the_failed_run(
            self, tmp_path, test_sampling, monkeypatch, clean_payload):
        monkeypatch.setenv(FAULTS_ENV, "raise:mcf:*:*")
        first = _runner(test_sampling, tmp_path / "c1", max_retries=0)
        outcome = first.run_suite(CONFIG_A, names=SUITE_NAMES)
        assert len(outcome) == 2 and len(outcome.failures) == 1
        (journal_path,) = (tmp_path / "c1").glob("suite-*.journal.jsonl")

        # Fault cleared: resume must restore gzip+lucas from the journal
        # and execute mcf alone (fresh cache directory proves the restored
        # runs came from the journal, not the result cache).
        monkeypatch.delenv(FAULTS_ENV)
        second = _runner(test_sampling, tmp_path / "c2", max_retries=0)
        resumed = second.run_suite(CONFIG_A, names=SUITE_NAMES,
                                   resume=True, journal=journal_path)
        assert resumed.ok
        assert [r.benchmark for r in second.timing.runs] == ["mcf"]
        assert _payload(resumed) == clean_payload

    def test_non_resume_resets_the_journal(
            self, tmp_path, test_sampling, monkeypatch):
        monkeypatch.delenv(FAULTS_ENV, raising=False)
        runner = _runner(test_sampling, tmp_path)
        runner.run_suite(CONFIG_A, names=("gzip",))
        (journal_path,) = tmp_path.glob("suite-*.journal.jsonl")
        journal = SuiteJournal(
            journal_path, suite_fingerprint(runner, CONFIG_A, ("gzip",)),
        )
        assert journal.load() == 1
        # A fresh (non-resume) invocation starts the journal over.
        fresh = _runner(test_sampling, tmp_path)
        fresh.cache.enabled = False
        fresh.run_suite(CONFIG_A, names=("gzip",), journal=journal_path)
        assert journal.load() == 1  # one new run, no stale entries

    def test_journal_false_disables_checkpointing(
            self, tmp_path, test_sampling, monkeypatch):
        monkeypatch.delenv(FAULTS_ENV, raising=False)
        runner = _runner(test_sampling, tmp_path)
        runner.run_suite(CONFIG_A, names=("gzip",), journal=False)
        assert list(tmp_path.glob("suite-*.journal.jsonl")) == []


class TestExperimentDegradation:
    def test_speedup_series_carries_failures(
            self, tmp_path, test_sampling, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV, "raise:mcf:*:*")
        runner = _runner(test_sampling, tmp_path, max_retries=0)
        series = speedup_experiment(runner, "coasts", names=SUITE_NAMES)
        assert sorted(series.speedups) == ["gzip", "lucas"]
        assert series.geomean > 0
        (failure,) = series.failures
        assert failure.benchmark == "mcf"
        assert failure_rows(series.failures, width=2) == \
            [["mcf", "FAILED(1/1)"]]


class TestKillAndResumeViaCli:
    def test_serial_kill_then_resume_completes(self, tmp_path):
        # A kill fault on the serial path takes down the suite process
        # itself (simulating an OOM kill of the whole campaign), so it is
        # observed from outside: the journal left behind lets --resume
        # finish the job.
        src = Path(__file__).resolve().parents[1] / "src"
        env = {
            "PYTHONPATH": str(src),
            "REPRO_CACHE_DIR": str(tmp_path),
            "PATH": "/usr/bin:/bin",
        }
        argv = [sys.executable, "-m", "repro", "--scale", str(TEST_SCALE),
                "suite", "--quick"]
        killed = subprocess.run(
            argv, env={**env, FAULTS_ENV: "kill:lucas:baseline:*"},
            capture_output=True, text=True, timeout=300,
        )
        assert killed.returncode == 137
        # gzip completed before the kill and must be in the journal.
        (journal_path,) = tmp_path.glob("suite-*.journal.jsonl")
        assert '"benchmark": "gzip"' in journal_path.read_text()

        resumed = subprocess.run(
            argv + ["--resume"], env=env,
            capture_output=True, text=True, timeout=300,
        )
        assert resumed.returncode == 0, resumed.stderr
        for name in SUITE_NAMES:
            assert name in resumed.stdout
