"""Tests for the workload layer: specs, schedules, generator, suite."""

import pytest

from repro.errors import ProgramError
from repro.workloads import (
    BenchmarkSpec,
    InnerLoopSpec,
    RegimeSpec,
    SUITE_NAMES,
    benchmark_names,
    build_suite,
    generate_workload,
    get_spec,
    load_workload,
    scaled_spec,
    schedule as sched,
)


class TestSchedules:
    def test_cyclic_covers_all_regimes_immediately(self):
        s = sched.cyclic(3, 9)
        assert s[:3] == (0, 1, 2)
        assert set(s) == {0, 1, 2}

    def test_blocked_is_contiguous(self):
        s = sched.blocked(2, 10)
        assert s == (0,) * 5 + (1,) * 5

    def test_late_phase_delays_first_occurrence(self):
        base = sched.cyclic(3, 100)
        s = sched.late_phase(base, late_regime=2, first_at=0.4)
        assert 2 not in s[:40]
        assert 2 in s[40:]
        assert len(s) == 100

    def test_staggered_intro_positions(self):
        s = sched.staggered(3, 60, intros=(0, 10, 20))
        assert s[0] == 0
        assert 1 not in s[:10] and s[10] == 1
        assert 2 not in s[:20] and s[20] == 2
        assert set(s) == {0, 1, 2}

    def test_staggered_validates_intros(self):
        with pytest.raises(ProgramError):
            sched.staggered(2, 10, intros=(5, 0))
        with pytest.raises(ProgramError):
            sched.staggered(2, 10, intros=(0, 99))

    def test_markov_reaches_every_regime(self):
        s = sched.markov(4, 50, stay_probability=0.5, seed=3)
        assert set(s) == {0, 1, 2, 3}

    def test_markov_deterministic(self):
        assert sched.markov(3, 40, seed=5) == sched.markov(3, 40, seed=5)

    def test_dominant_scales_hold_requested_fraction(self):
        scales = sched.dominant_iteration_scales(
            20, dominant_index=7, dominant_fraction=0.6, seed=1
        )
        assert scales[7] / sum(scales) == pytest.approx(0.6)


class TestSpecValidation:
    def test_schedule_regime_bounds(self):
        regime = RegimeSpec("r", (InnerLoopSpec("l"),))
        with pytest.raises(ProgramError):
            BenchmarkSpec(name="x", seed=1, regimes=(regime,), schedule=(0, 1))

    def test_iteration_scale_length_must_match(self):
        regime = RegimeSpec("r", (InnerLoopSpec("l"),))
        with pytest.raises(ProgramError):
            BenchmarkSpec(
                name="x", seed=1, regimes=(regime,), schedule=(0, 0),
                iteration_scale=(1.0,),
            )

    def test_footprint_capped_by_working_set(self):
        loop = InnerLoopSpec("l", working_set=1024, iterations=10_000,
                             stride=64)
        assert loop.footprint_bytes == 1024

    def test_regime_first_positions_monotone_information(self):
        spec = get_spec("gzip")
        positions = spec.regime_first_positions()
        assert len(positions) == len(spec.regimes)
        assert all(0 < p <= 1 for p in positions)


class TestSuite:
    def test_suite_has_16_benchmarks(self):
        suite = build_suite()
        assert len(suite) == 16
        assert set(suite) == set(SUITE_NAMES)

    def test_paper_phase_counts(self):
        """Section III-B: gzip 4, equake 6, fma3d 5 regimes; average ~3."""
        suite = build_suite()
        assert len(suite["gzip"].regimes) == 4
        assert len(suite["equake"].regimes) == 6
        assert len(suite["fma3d"].regimes) == 5
        average = sum(len(s.regimes) for s in suite.values()) / len(suite)
        assert 2.5 <= average <= 3.5

    def test_gcc_has_56_iterations_with_dominant(self):
        gcc = build_suite()["gcc"]
        assert gcc.n_outer_iterations == 56
        shares = [
            gcc.regimes[r].instructions_per_iteration * gcc.scale_of(i)
            for i, r in enumerate(gcc.schedule)
        ]
        assert max(shares) / sum(shares) > 0.5

    def test_late_phase_design_positions(self):
        """gcc ~86%, art ~47%, bzip2 ~36% last-first-position (design)."""
        suite = build_suite()
        assert max(suite["gcc"].regime_first_positions()) > 0.7
        assert 0.35 <= max(suite["art"].regime_first_positions()) <= 0.6
        assert 0.25 <= max(suite["bzip2"].regime_first_positions()) <= 0.45
        assert max(suite["gzip"].regime_first_positions()) < 0.1

    def test_benchmark_names_order(self):
        assert benchmark_names()[0] == "gzip"
        assert len(benchmark_names(quick=True)) == 3

    def test_get_spec_unknown_raises(self):
        with pytest.raises(ProgramError):
            get_spec("doom")


class TestGenerator:
    def test_workload_structure(self, small_workload):
        wl = small_workload
        program = wl.program
        assert program.n_blocks > 10
        # one top-level init loop + one outer loop
        top = program.loops.top_level
        assert {wl.init_loop_id, wl.outer_loop_id} == {l.loop_id for l in top}
        # every regime loop is a child of the outer loop
        for layout in wl.regime_layouts:
            for inner in layout.loops:
                assert program.loops.loops[inner.loop_id].parent == \
                    wl.outer_loop_id

    def test_regimes_use_disjoint_blocks(self, small_workload):
        seen = set()
        for layout in small_workload.regime_layouts:
            for inner in layout.loops:
                blocks = {inner.header_block, *inner.body_blocks}
                assert not blocks & seen
                seen |= blocks

    def test_every_region_has_init_scan(self, small_workload):
        scanned = {b for b, _ in small_workload.init_scans}
        program = small_workload.program
        regions_scanned = {
            program.block(b).memory_instructions[0].mem_region
            for b in scanned
        }
        loop_regions = {
            inner.region_id
            for layout in small_workload.regime_layouts
            for inner in layout.loops
        }
        assert loop_regions <= regions_scanned

    def test_shared_regions_resolve_to_one_region(self):
        wl = generate_workload(scaled_spec(get_spec("swim"), 0.05))
        region_ids = {
            inner.region_id
            for layout in wl.regime_layouts
            for inner in layout.loops
            if inner.spec.region == "grid"
        }
        assert len(region_ids) == 1

    def test_load_workload_caches(self):
        a = load_workload("gzip", scale=0.02)
        b = load_workload("gzip", scale=0.02)
        assert a is b

    def test_scaled_spec_preserves_phase_structure(self):
        spec = scaled_spec(get_spec("equake"), 0.05)
        assert len(spec.regimes) == 6
        assert set(spec.schedule) == set(range(6))
